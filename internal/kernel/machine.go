// Package kernel implements the simulated operating system and CPU
// that DynaCut customizes: paged process address spaces with
// permissioned VMAs, an interpreter for the virtual ISA (internal/isa)
// with precise INT3 → SIGTRAP semantics and user signal frames,
// fork-capable processes, a round-robin scheduler with a deterministic
// virtual clock, and a virtual TCP stack whose connections survive
// checkpoint/restore (the TCP_REPAIR analogue).
package kernel

import (
	"errors"
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/obs"
)

// Tracer observes basic-block execution; internal/trace implements it
// to produce drcov-style coverage logs.
type Tracer interface {
	// OnBlock is called each time a basic block completes execution.
	OnBlock(pid int, start, size uint64)
}

// NudgeFunc receives the guest's "initialization finished" nudge
// (syscall SysNudge), the DynamoRIO-nudge analogue used to split
// init-phase from serving-phase coverage.
type NudgeFunc func(pid int, arg uint64)

// SyscallHook observes every system call a guest issues (by number,
// before execution). The paper's §5 proposes monitoring specific
// system calls to detect the end of the initialization phase
// automatically; internal/core's AutoNudge builds on this hook.
type SyscallHook func(pid int, nr uint64)

// FaultHook is consulted at named hook sites inside the
// checkpoint/rewrite/restore machinery (criu, crit, core). A non-nil
// return injects a failure at that site; internal/faultinject
// implements a deterministic, seeded injector.
type FaultHook interface {
	Fault(site string, detail int) error
}

// BlobMutator is an optional FaultHook extension that can corrupt a
// serialized blob in flight (modeling image corruption on the tmpfs
// between dump and restore).
type BlobMutator interface {
	MutateBlob(site string, blob []byte) []byte
}

// FaultReporter is an optional FaultHook extension: hooks that
// implement it are handed a callback to invoke for every fault they
// actually inject (blob mutations included, which Machine.Fault cannot
// see fail). The machine wires the callback to the installed observer,
// so every injected fault becomes a trace event.
type FaultReporter interface {
	// SetReporter installs the callback (nil disables reporting).
	SetReporter(func(site string, hit int, injected bool))
}

// Machine is the simulated computer: processes, network, virtual
// clock, and the "disk" of loaded binaries.
type Machine struct {
	procs     map[int]*Process
	nextPID   int
	clock     uint64
	net       *network
	tracer    Tracer
	nudge     NudgeFunc
	syshook   SyscallHook
	faultHook FaultHook
	obs       *obs.Observer
	disk      map[string][]byte // serialized DELF files by name

	// Execution engine selection (see bcache.go). ModeInterpret is the
	// reference interpreter; ModeTranslate runs through the basic-block
	// translation cache; ModeLockstep runs the cache with per-dispatch
	// re-decode verification, logging any divergence below.
	execMode      ExecMode
	cacheDivs     []CacheDivergence
	cacheDivTotal uint64

	// Tick-progress watchdog: fn fires between scheduler rounds once
	// the virtual clock has advanced by at least wdEvery ticks since
	// the last firing. The callback may run the machine itself
	// (probes, rewrites); wdBusy suppresses nested firings so a
	// watchdog-driven Run cannot recurse into the watchdog.
	wdEvery uint64
	wdLast  uint64
	wdFn    func(clock uint64)
	wdBusy  bool
}

// NewMachine creates an empty machine.
func NewMachine() *Machine {
	return &Machine{
		procs:   map[int]*Process{},
		nextPID: 0,
		net:     newNetwork(),
		disk:    map[string][]byte{},
	}
}

// Machine-level errors.
var (
	ErrNoProcess = errors.New("kernel: no such process")
	ErrNoFile    = errors.New("kernel: no such file on disk")
)

// SetTracer installs (or removes, with nil) the coverage tracer.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// SetExecMode selects the execution engine for subsequent runs. Safe
// to switch between scheduler rounds; cached blocks persist across
// switches (they are revalidated on every dispatch anyway).
func (m *Machine) SetExecMode(mode ExecMode) { m.execMode = mode }

// ExecMode returns the currently selected execution engine.
func (m *Machine) ExecMode() ExecMode { return m.execMode }

// SetNudgeFunc installs the nudge callback.
func (m *Machine) SetNudgeFunc(f NudgeFunc) { m.nudge = f }

// SetSyscallHook installs (or removes, with nil) the syscall observer.
func (m *Machine) SetSyscallHook(f SyscallHook) { m.syshook = f }

// SetFaultHook installs (or removes, with nil) the fault injector.
func (m *Machine) SetFaultHook(h FaultHook) {
	m.faultHook = h
	m.wireFaultReporter()
}

// SetObserver installs (or removes, with nil) the observability sink.
// The observer's virtual-clock source is wired to this machine's tick
// counter, so its events carry deterministic timestamps; if the fault
// hook reports injections (FaultReporter), those are wired through as
// fault events too. With no observer attached, every emit site is a
// nil check — zero overhead.
func (m *Machine) SetObserver(o *obs.Observer) {
	m.obs = o
	if o != nil {
		o.SetClock(func() uint64 { return m.clock })
	}
	m.wireFaultReporter()
}

// Observer returns the installed observability sink (nil when
// unobserved); criu and core emit their pipeline metrics through it.
func (m *Machine) Observer() *obs.Observer { return m.obs }

// wireFaultReporter connects a reporting fault hook to the observer so
// each injected fault (blob mutations included) becomes an event.
func (m *Machine) wireFaultReporter() {
	fr, ok := m.faultHook.(FaultReporter)
	if !ok {
		return
	}
	o := m.obs
	if o == nil {
		fr.SetReporter(nil)
		return
	}
	fr.SetReporter(func(site string, hit int, injected bool) {
		if injected {
			o.Fault(site, hit)
		}
	})
}

// SetTickWatchdog installs (or, with fn == nil, removes) the
// tick-progress watchdog: fn fires between scheduler rounds whenever
// the virtual clock has advanced every or more ticks since it last
// fired. It is the hook a closed-loop controller (internal/supervise)
// attaches to so its decisions are driven purely by virtual time —
// deterministic across reruns. The callback runs synchronously on the
// Run path and may itself run the machine; nested firings are
// suppressed while a callback is in flight.
func (m *Machine) SetTickWatchdog(every uint64, fn func(clock uint64)) {
	if every == 0 {
		every = 1
	}
	m.wdEvery = every
	m.wdLast = m.clock
	m.wdFn = fn
}

// pokeWatchdog fires the watchdog if due. Called between scheduler
// rounds (never mid-instruction), so the process table is stable.
func (m *Machine) pokeWatchdog() {
	if m.wdFn == nil || m.wdBusy || m.clock-m.wdLast < m.wdEvery {
		return
	}
	m.wdBusy = true
	m.wdLast = m.clock
	m.wdFn(m.clock)
	m.wdBusy = false
}

// Fault consults the installed fault hook at a named site; without a
// hook it always succeeds.
func (m *Machine) Fault(site string, detail int) error {
	if m.faultHook == nil {
		return nil
	}
	err := m.faultHook.Fault(site, detail)
	if err != nil && m.obs != nil {
		// Reporting hooks already emitted the event themselves.
		if _, reports := m.faultHook.(FaultReporter); !reports {
			m.obs.Fault(site, 0)
		}
	}
	return err
}

// MutateBlob passes a serialized blob through the installed fault
// hook, if it supports blob mutation.
func (m *Machine) MutateBlob(site string, blob []byte) []byte {
	if mu, ok := m.faultHook.(BlobMutator); ok {
		return mu.MutateBlob(site, blob)
	}
	return blob
}

// Clock returns the virtual time in ticks (1 tick = 1 retired
// instruction across all processes).
func (m *Machine) Clock() uint64 { return m.clock }

// AdvanceClock adds ticks to the virtual clock without executing
// guest code. Checkpoint/restore uses it to model the service
// interruption window (Figure 8).
func (m *Machine) AdvanceClock(ticks uint64) { m.clock += ticks }

// WriteFile stores a serialized binary on the machine's disk.
func (m *Machine) WriteFile(name string, data []byte) {
	m.disk[name] = append([]byte(nil), data...)
}

// ReadFile retrieves a binary from disk.
func (m *Machine) ReadFile(name string) ([]byte, error) {
	b, ok := m.disk[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	return b, nil
}

// Process returns the process with the given PID.
func (m *Machine) Process(pid int) (*Process, error) {
	p, ok := m.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	return p, nil
}

// Processes returns all live (non-exited) processes sorted by PID.
func (m *Machine) Processes() []*Process {
	var out []*Process
	for _, p := range m.procs {
		if !p.exited {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// Children returns live children of pid sorted by PID.
func (m *Machine) Children(pid int) []*Process {
	var out []*Process
	for _, p := range m.procs {
		if p.parent == pid && !p.exited {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// Kill terminates a process immediately (checkpoint-then-kill path).
func (m *Machine) Kill(pid int) error {
	p, err := m.Process(pid)
	if err != nil {
		return err
	}
	m.terminate(p, 137, 0)
	return nil
}

// Remove deletes an exited process table entry.
func (m *Machine) Remove(pid int) {
	delete(m.procs, pid)
}

// NewRawProcess creates an empty process shell (restore path). The
// caller populates memory, registers, sigactions and descriptors.
func (m *Machine) NewRawProcess(name string, parent int) *Process {
	m.nextPID++
	p := newProcess(m.nextPID, parent, name)
	m.procs[p.pid] = p
	return p
}

// AttachListener binds a restored listener descriptor to its port.
func (m *Machine) AttachListener(p *Process, fd int, port uint16) error {
	l, err := m.net.bind(port)
	if err != nil {
		return err
	}
	p.fds[fd] = &fdesc{kind: FDListener, lst: l}
	if fd >= p.nextFD {
		p.nextFD = fd + 1
	}
	return nil
}

// ShareListener attaches fd to an already-bound listener (restoring
// a process tree whose members inherited one listener across fork).
func (m *Machine) ShareListener(p *Process, fd int, port uint16) error {
	l, ok := m.net.listeners[port]
	if !ok || l.closed {
		return fmt.Errorf("%w: %d", ErrNotListening, port)
	}
	p.fds[fd] = &fdesc{kind: FDListener, lst: l}
	if fd >= p.nextFD {
		p.nextFD = fd + 1
	}
	return nil
}

// AttachConn re-attaches a restored connection descriptor. If a live
// connection with the given ID still exists in the machine (the
// normal same-host rewrite flow), it is reused so host clients keep
// their endpoint — the TCP_REPAIR behaviour. Otherwise a fresh,
// already-closed-on-the-far-side connection is materialized.
func (m *Machine) AttachConn(p *Process, fd int, connID uint64, port uint16, sideA bool) {
	c, ok := m.net.conns[connID]
	if !ok {
		c = &conn{id: connID, port: port, aClosed: true}
		m.net.conns[connID] = c
	}
	p.fds[fd] = &fdesc{kind: FDConn, cn: c, sideA: sideA}
	if fd >= p.nextFD {
		p.nextFD = fd + 1
	}
}

// AttachStdio restores a stdio descriptor.
func (m *Machine) AttachStdio(p *Process, fd, stdNo int) {
	p.fds[fd] = &fdesc{kind: FDStdio, stdNo: stdNo}
	if fd >= p.nextFD {
		p.nextFD = fd + 1
	}
}

// terminate marks a process dead and releases its descriptors.
func (m *Machine) terminate(p *Process, code int, sig Signal) {
	if p.exited {
		return
	}
	p.exited = true
	p.exitCode = code
	p.killedBy = sig
	for _, d := range p.fds {
		m.closeFD(p, d)
	}
}

// closeFD releases one descriptor. Descriptors are shared across
// fork (dup semantics), so the underlying listener/connection is only
// torn down once no other live process still references it. Callers
// must remove the descriptor from p's table (or mark p exited)
// before calling.
func (m *Machine) closeFD(p *Process, d *fdesc) {
	switch d.kind {
	case FDListener:
		if d.lst != nil && !m.referenced(d) {
			m.net.closeListener(d.lst)
		}
	case FDConn:
		if m.referenced(d) {
			return
		}
		if d.sideA {
			d.cn.aClosed = true
		} else {
			d.cn.bClosed = true
		}
	}
}

// referenced reports whether any live process still holds a
// descriptor for the same underlying object (same listener, or same
// connection side).
func (m *Machine) referenced(d *fdesc) bool {
	for _, q := range m.procs {
		if q.exited {
			continue
		}
		for _, qd := range q.fds {
			if qd == d || qd.kind != d.kind {
				continue
			}
			switch d.kind {
			case FDListener:
				if qd.lst != nil && qd.lst == d.lst {
					return true
				}
			case FDConn:
				if qd.cn == d.cn && qd.sideA == d.sideA {
					return true
				}
			}
		}
	}
	return false
}

// Run executes up to maxSteps instructions across all runnable
// processes (round-robin, 64-instruction slices) and returns the
// number actually retired. It returns early when every live process
// is blocked or exited.
func (m *Machine) Run(maxSteps uint64) uint64 {
	var executed uint64
	for executed < maxSteps {
		n, ran := m.runRound(maxSteps - executed)
		if !ran {
			break
		}
		executed += n
		m.pokeWatchdog()
		if n == 0 {
			break
		}
	}
	if m.obs != nil && executed > 0 {
		m.obs.Add("kernel.ticks", int64(executed))
	}
	return executed
}

// runRound executes exactly one scheduler round: every live process,
// in PID order, gets one time slice of up to 64 instructions (bounded
// by budget across the round). It returns how many instructions
// retired and whether any live process existed to schedule at all.
// The watchdog is NOT poked here — callers do that between rounds.
func (m *Machine) runRound(budget uint64) (executed uint64, ran bool) {
	pids := make([]int, 0, len(m.procs))
	for pid, p := range m.procs {
		if !p.exited {
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)
	if len(pids) == 0 {
		return 0, false
	}
	for _, pid := range pids {
		p := m.procs[pid]
		if m.execMode != ModeInterpret {
			// Translating engine: the slice runs through the block
			// cache. It charges m.clock internally (per instruction,
			// so mid-slice clock reads observe the same values the
			// interpreter would produce) and returns the charge.
			executed += m.runSliceTranslated(p, minU64(64, budget-executed))
			continue
		}
		for i := 0; i < 64 && executed < budget && !p.exited; i++ {
			if !m.step(p) {
				break // would block; move to next process
			}
			executed++
			m.clock++
		}
	}
	return executed, true
}

// RunRound executes one scheduler round (each live process gets at
// most one 64-instruction slice) and returns the instructions retired.
// Between rounds the process table is stable and no guest is
// mid-instruction — the quiescence boundary the live-patch fast path
// steps the machine by while it waits for every RIP and saved return
// address to leave the affected blocks. The tick watchdog fires after
// the round, exactly as it does between Run's internal rounds, so a
// supervisor keeps observing virtual-time progress. A zero return with
// live processes means every one of them is blocked: more rounds
// cannot change the guest's state.
func (m *Machine) RunRound() uint64 {
	n, ran := m.runRound(^uint64(0))
	if !ran {
		return 0
	}
	m.pokeWatchdog()
	if m.obs != nil && n > 0 {
		m.obs.Add("kernel.ticks", int64(n))
	}
	return n
}

// RunUntil runs until pred returns true or maxSteps instructions have
// retired, returning whether pred was satisfied.
func (m *Machine) RunUntil(pred func() bool, maxSteps uint64) bool {
	var executed uint64
	for executed < maxSteps {
		if pred() {
			return true
		}
		n := m.Run(minU64(1024, maxSteps-executed))
		executed += n
		if n == 0 {
			return pred()
		}
	}
	return pred()
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
