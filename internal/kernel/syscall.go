package kernel

// Syscall numbers, passed in r0; arguments in r1..r5; the result
// replaces r0. The guest-visible ABI is documented in
// internal/apps/libc, which wraps each of these.
const (
	SysExit      = 1  // (code)
	SysWrite     = 2  // (fd, buf, len) -> n | ^0 on error
	SysRead      = 3  // (fd, buf, len) -> n; blocks until data/EOF
	SysSocket    = 4  // () -> fd
	SysBind      = 5  // (fd, port) -> 0 | ^0
	SysListen    = 6  // (fd) -> 0 | ^0
	SysAccept    = 7  // (fd) -> connfd; blocks
	SysClose     = 8  // (fd) -> 0 | ^0
	SysFork      = 9  // () -> child pid | 0 in child
	SysGetPID    = 10 // () -> pid
	SysSigaction = 11 // (signo, handler, restorer) -> 0
	SysSigreturn = 12 // (frame)
	SysClock     = 13 // () -> machine ticks
	SysYield     = 14 // () cooperative reschedule
	SysNudge     = 15 // (arg) notify tracer: initialization finished
	SysWait      = 16 // () -> (pid<<8|code) of any exited child | ^0
)

// errRet is the guest-visible -1.
const errRet = ^uint64(0)

// syscall executes the system call at p.rip (a SYS instruction whose
// end is next). It returns false if the call would block; the
// instruction is then retried on the next schedule.
func (m *Machine) syscall(p *Process, next uint64) bool {
	nr := p.regs[0]
	if m.syshook != nil {
		m.syshook(p.pid, nr)
	}
	if m.obs != nil {
		m.obs.Add("kernel.syscalls", 1)
	}
	if p.sysFilter != nil && !p.sysFilter[nr] {
		// seccomp SECCOMP_RET_KILL semantics.
		m.terminate(p, 128+int(SIGSYS), SIGSYS)
		return true
	}
	switch nr {
	case SysExit:
		m.terminate(p, int(p.regs[1]), 0)
		return true
	case SysWrite:
		p.regs[0] = m.sysWrite(p)
	case SysRead:
		n, wouldBlock := m.sysRead(p)
		if wouldBlock {
			return false
		}
		p.regs[0] = n
	case SysSocket:
		p.regs[0] = uint64(p.allocFD(&fdesc{kind: FDListener}))
	case SysBind:
		p.regs[0] = m.sysBind(p)
	case SysListen:
		// Binding already registered the listener; accept a no-op.
		p.regs[0] = 0
	case SysAccept:
		fd, wouldBlock := m.sysAccept(p)
		if wouldBlock {
			return false
		}
		p.regs[0] = fd
	case SysClose:
		d, ok := p.fds[int(p.regs[1])]
		if !ok {
			p.regs[0] = errRet
			break
		}
		m.closeFD(p, d)
		delete(p.fds, int(p.regs[1]))
		p.regs[0] = 0
	case SysFork:
		p.regs[0] = m.sysFork(p, next)
	case SysGetPID:
		p.regs[0] = uint64(p.pid)
	case SysSigaction:
		p.SetSigaction(Signal(p.regs[1]), Sigaction{Handler: p.regs[2], Restorer: p.regs[3]})
		p.regs[0] = 0
	case SysSigreturn:
		m.sigreturn(p, p.regs[1])
		return true // rip restored from the frame; do not advance
	case SysClock:
		p.regs[0] = m.clock
	case SysYield:
		p.regs[0] = 0
	case SysNudge:
		if m.nudge != nil {
			m.nudge(p.pid, p.regs[1])
		}
		p.regs[0] = 0
	case SysWait:
		p.regs[0] = m.sysWait(p)
	default:
		p.regs[0] = errRet
	}
	p.rip = next
	return true
}

func (m *Machine) sysWrite(p *Process) uint64 {
	fd, buf, n := int(p.regs[1]), p.regs[2], int(p.regs[3])
	d, ok := p.fds[fd]
	if !ok || n < 0 {
		return errRet
	}
	data, err := p.mem.ReadGuest(buf, n)
	if err != nil {
		return errRet
	}
	switch d.kind {
	case FDStdio:
		if d.stdNo == 2 {
			p.stderr = append(p.stderr, data...)
		} else {
			p.stdout = append(p.stdout, data...)
		}
		return uint64(n)
	case FDConn:
		if d.sideA {
			if d.cn.bClosed {
				return errRet
			}
			d.cn.a2b = append(d.cn.a2b, data...)
		} else {
			if d.cn.aClosed && len(d.cn.b2a) == 0 && d.cn.bClosed {
				return errRet
			}
			d.cn.b2a = append(d.cn.b2a, data...)
		}
		return uint64(n)
	default:
		return errRet
	}
}

// sysRead returns (result, wouldBlock).
func (m *Machine) sysRead(p *Process) (uint64, bool) {
	fd, buf, n := int(p.regs[1]), p.regs[2], int(p.regs[3])
	d, ok := p.fds[fd]
	if !ok || n < 0 {
		return errRet, false
	}
	switch d.kind {
	case FDStdio:
		return 0, false // stdin: immediate EOF
	case FDConn:
		var src *[]byte
		var peerClosed bool
		if d.sideA {
			src = &d.cn.b2a
			peerClosed = d.cn.bClosed
		} else {
			src = &d.cn.a2b
			peerClosed = d.cn.aClosed
		}
		if len(*src) == 0 {
			if peerClosed {
				return 0, false // EOF
			}
			return 0, true // would block
		}
		k := n
		if k > len(*src) {
			k = len(*src)
		}
		if err := p.mem.WriteGuest(buf, (*src)[:k]); err != nil {
			return errRet, false
		}
		*src = (*src)[k:]
		return uint64(k), false
	default:
		return errRet, false
	}
}

func (m *Machine) sysBind(p *Process) uint64 {
	fd, port := int(p.regs[1]), uint16(p.regs[2])
	d, ok := p.fds[fd]
	if !ok || d.kind != FDListener || d.lst != nil {
		return errRet
	}
	l, err := m.net.bind(port)
	if err != nil {
		return errRet
	}
	d.lst = l
	return 0
}

// sysAccept returns (connfd, wouldBlock).
func (m *Machine) sysAccept(p *Process) (uint64, bool) {
	fd := int(p.regs[1])
	d, ok := p.fds[fd]
	if !ok || d.kind != FDListener || d.lst == nil {
		return errRet, false
	}
	if len(d.lst.backlog) == 0 {
		if d.lst.closed {
			return errRet, false
		}
		return 0, true
	}
	c := d.lst.backlog[0]
	d.lst.backlog = d.lst.backlog[1:]
	nfd := p.allocFD(&fdesc{kind: FDConn, cn: c, sideA: false})
	return uint64(nfd), false
}

// sysFork clones the calling process. The child resumes at the same
// point with r0 = 0; the parent receives the child PID.
func (m *Machine) sysFork(p *Process, next uint64) uint64 {
	m.nextPID++
	child := &Process{
		pid:     m.nextPID,
		parent:  p.pid,
		name:    p.name,
		regs:    p.regs,
		rip:     next,
		zf:      p.zf,
		lf:      p.lf,
		mem:     p.mem.Clone(),
		sig:     map[Signal]Sigaction{},
		fds:     map[int]*fdesc{},
		nextFD:  p.nextFD,
		modules: append([]Module(nil), p.modules...),
	}
	for s, a := range p.sig {
		child.sig[s] = a
	}
	// seccomp filters are inherited across fork.
	if p.sysFilter != nil {
		child.sysFilter = make(map[uint64]bool, len(p.sysFilter))
		for nr := range p.sysFilter {
			child.sysFilter[nr] = true
		}
	}
	// Descriptors are shared objects (dup semantics): master and
	// worker can both accept on an inherited listener.
	for fd, d := range p.fds {
		cp := *d
		child.fds[fd] = &cp
	}
	child.regs[0] = 0
	child.blockStart = next
	m.procs[child.pid] = child
	return uint64(child.pid)
}

// sysWait reaps any exited child: returns pid<<8 | (code&0xff), or -1
// if no child has exited (non-blocking; respawn loops poll it).
func (m *Machine) sysWait(p *Process) uint64 {
	for pid, c := range m.procs {
		if c.parent == p.pid && c.exited {
			delete(m.procs, pid)
			return uint64(pid)<<8 | uint64(c.exitCode&0xff)
		}
	}
	return errRet
}
