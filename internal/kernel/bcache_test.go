package kernel

import (
	"testing"
)

// runBoth runs the same program to completion on two fresh machines —
// one interpreting, one in the given cache mode — and asserts the
// guest-visible outcomes are identical.
func runBoth(t *testing.T, src string, mode ExecMode, maxSteps uint64) (ref, tx *Process) {
	t.Helper()
	exe := buildExe(t, "test", src)

	mi := NewMachine()
	ref, err := mi.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	mi.Run(maxSteps)

	mt := NewMachine()
	mt.SetExecMode(mode)
	tx, err = mt.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	mt.Run(maxSteps)

	if ref.Exited() != tx.Exited() || ref.ExitCode() != tx.ExitCode() || ref.KilledBy() != tx.KilledBy() {
		t.Fatalf("%v: exit state diverged: interpreter exited=%v/%d/%v, engine exited=%v/%d/%v",
			mode, ref.Exited(), ref.ExitCode(), ref.KilledBy(), tx.Exited(), tx.ExitCode(), tx.KilledBy())
	}
	if ref.Insts() != tx.Insts() {
		t.Fatalf("%v: retired insts diverged: interpreter %d, engine %d", mode, ref.Insts(), tx.Insts())
	}
	if mi.Clock() != mt.Clock() {
		t.Fatalf("%v: clock diverged: interpreter %d, engine %d", mode, mi.Clock(), mt.Clock())
	}
	if string(ref.Stdout()) != string(tx.Stdout()) {
		t.Fatalf("%v: stdout diverged: %q vs %q", mode, ref.Stdout(), tx.Stdout())
	}
	if n := mt.CacheDivergenceCount(); n != 0 {
		t.Fatalf("%v: %d cache decode divergences: %v", mode, n, mt.CacheDivergences())
	}
	return ref, tx
}

// corpusPrograms are small hand-written guests covering every block
// terminator and fault shape the translator must reproduce exactly.
var corpusPrograms = map[string]string{
	"loop-arith": `
.text
.global _start
_start:
	mov r1, 0
	mov r2, 0
loop:
	add r1, 1
	add r2, 3
	mul r2, 2
	and r2, 0xffff
	cmp r1, 500
	jne loop
	mov r0, 1
	mov r1, 0
	syscall
`,
	"call-ret": `
.text
.global _start
_start:
	mov r1, 0
	mov r2, 0
again:
	call inc
	cmp r1, 50
	jl again
	mov r0, 1
	syscall
inc:
	add r1, 1
	add r2, 7
	ret
`,
	"trap-kills": `
.text
.global _start
_start:
	mov r1, 3
	int3
	mov r0, 1
	syscall
`,
	"div-zero": `
.text
.global _start
_start:
	mov r1, 9
	mov r2, 0
	div r1, r2
	mov r0, 1
	syscall
`,
	"sigtrap-handler": `
.text
.global _start
_start:
	mov r1, 5
	mov r2, =handler
	mov r3, =restorer
	mov r0, 11
	syscall
	mov r4, 0
loop:
	int3
	add r4, 1
	cmp r4, 20
	jne loop
	mov r0, 1
	mov r1, 0
	syscall
handler:
	ret
restorer:
	mov r1, sp
	mov r0, 12
	syscall
`,
	"jmp-chain": `
.text
.global _start
_start:
	mov r1, 0
	mov r2, 0
loop:
	add r1, 1
	jmp hop1
hop2:
	add r2, 1
	cmp r1, 100
	jne loop
	mov r0, 1
	mov r1, 0
	syscall
hop1:
	add r2, 2
	jmp hop2
`,
}

func TestTranslateMatchesInterpreter(t *testing.T) {
	for name, src := range corpusPrograms {
		t.Run(name, func(t *testing.T) {
			runBoth(t, src, ModeTranslate, 200_000)
		})
	}
}

func TestLockstepMatchesInterpreter(t *testing.T) {
	for name, src := range corpusPrograms {
		t.Run(name, func(t *testing.T) {
			runBoth(t, src, ModeLockstep, 200_000)
		})
	}
}

// TestBlockCacheHitsAndChaining: the hot loop in jmp-chain must be
// cached as ONE superblock spanning both unconditional jumps, and
// subsequent iterations must be served from the cache.
func TestBlockCacheHitsAndChaining(t *testing.T) {
	m := NewMachine()
	m.SetExecMode(ModeTranslate)
	exe := buildExe(t, "test", corpusPrograms["jmp-chain"])
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(100_000)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exit = %v/%d", p.Exited(), p.ExitCode())
	}
	st := p.Mem().BlockCacheStats()
	if st.Translations == 0 || st.Hits == 0 {
		t.Fatalf("no cache activity: %+v", st)
	}
	if st.ChainedJumps < 2 {
		t.Fatalf("expected >=2 chained jumps (loop->hop1->hop2), got %+v", st)
	}
	if st.Hits < 90 {
		t.Fatalf("hot loop not served from cache: %+v", st)
	}
	// The superblock itself: one cached block containing instructions
	// at non-contiguous addresses (the jmp targets).
	var sawSuper bool
	for _, bi := range p.Mem().CachedBlocks() {
		for i := 1; i < len(bi.Addrs); i++ {
			if bi.Addrs[i] != bi.Addrs[i-1]+uint64(bi.Insts[i-1].Size) {
				sawSuper = true
			}
		}
	}
	if !sawSuper {
		t.Fatalf("no superblock spanning a jump found in %v", p.Mem().CachedBlocks())
	}
}

// TestSelfLoopNotUnrolled: a block that jumps to its own entry must
// terminate recording instead of unrolling the loop into the cache.
func TestSelfLoopNotUnrolled(t *testing.T) {
	m := NewMachine()
	m.SetExecMode(ModeTranslate)
	exe := buildExe(t, "test", `
.text
.global _start
_start:
	mov r1, 1
spin:
	add r1, 1
	jmp spin
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(1000)
	for _, bi := range p.Mem().CachedBlocks() {
		if len(bi.Insts) > 3 {
			t.Fatalf("self-loop unrolled into %d-inst block: %+v", len(bi.Insts), bi)
		}
	}
	if got := p.Reg(1); got < 400 {
		t.Fatalf("loop did not run from cache: r1=%d", got)
	}
}

// TestWriteInvalidatesCachedBlock: an INT3 written over cached code
// (the live-patch channel is Memory.Write, same as here) must evict
// the block so the very next dispatch traps — never replays the
// original instruction.
func TestWriteInvalidatesCachedBlock(t *testing.T) {
	exe := buildExe(t, "test", `
.text
.global _start
_start:
loop:
	mov r3, 7
	jmp loop
`)
	m := NewMachine()
	m.SetExecMode(ModeTranslate)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(1000)
	if st := p.Mem().BlockCacheStats(); st.Hits == 0 {
		t.Fatalf("loop not cached: %+v", st)
	}
	victim, err := exe.Symbol("loop")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mem().Write(victim.Value, []byte{0xCC}); err != nil { // INT3
		t.Fatal(err)
	}
	st := p.Mem().BlockCacheStats()
	if st.PageFlushes == 0 {
		t.Fatalf("loud write did not flush cached blocks: %+v", st)
	}
	m.Run(1000)
	if !p.Exited() || p.KilledBy() != SIGTRAP {
		t.Fatalf("stale cached code ran past the patch: exited=%v killed=%v", p.Exited(), p.KilledBy())
	}
}

// TestSuperblockSeveredOnFlush: invalidating the page under a chained
// superblock must remove the whole chain from the cache.
func TestSuperblockSeveredOnFlush(t *testing.T) {
	m := NewMachine()
	m.SetExecMode(ModeTranslate)
	exe := buildExe(t, "test", corpusPrograms["jmp-chain"])
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(300) // enough to cache the loop superblock, not to finish
	if p.Exited() {
		t.Fatal("finished too early for the test to mean anything")
	}
	blocks := p.Mem().CachedBlocks()
	if len(blocks) == 0 {
		t.Fatal("nothing cached")
	}
	// Overwrite one byte of the page holding the first cached block
	// with the identical value: contents unchanged, but the loud-write
	// protocol must still sever every block on the page.
	addr := blocks[0].Entry
	b, err := p.Mem().Read(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mem().Write(addr, b); err != nil {
		t.Fatal(err)
	}
	for _, bi := range p.Mem().CachedBlocks() {
		for _, pn := range bi.Pages {
			if pn == addr/PageSize {
				t.Fatalf("block %#x still cached after page %#x flush", bi.Entry, pn)
			}
		}
	}
	// And the program still completes correctly afterwards.
	m.Run(100_000)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exit = %v/%d", p.Exited(), p.ExitCode())
	}
}

// TestFlipBitsRetranslates is the PR's regression test for the
// FlipBits interplay: a silent bit flip bypasses the dirty bitmap and
// the eager flush, so only the per-page generation counter can stop
// the cache from replaying the pre-flip decode. Flip, observe the
// flipped semantics; repair (loud write, the attestation channel),
// observe the original semantics again.
func TestFlipBitsRetranslates(t *testing.T) {
	exe := buildExe(t, "test", `
.text
.global _start
_start:
loop:
	mov r3, 7
	jmp loop
`)
	m := NewMachine()
	m.SetExecMode(ModeTranslate)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(1000)
	if got := p.Reg(3); got != 7 {
		t.Fatalf("r3 = %d, want 7", got)
	}
	if st := p.Mem().BlockCacheStats(); st.Hits == 0 {
		t.Fatalf("loop not cached: %+v", st)
	}

	victim, err := exe.Symbol("loop")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := p.Mem().Read(victim.Value, 10)
	if err != nil {
		t.Fatal(err)
	}
	dirtyBefore := p.Mem().DirtyPageCount()
	// MOVri encodes [op][reg][imm64le]: flip bit 1 of the immediate's
	// low byte, turning `mov r3, 7` into `mov r3, 5`.
	if !p.Mem().FlipBits(victim.Value+2, 0x02) {
		t.Fatal("FlipBits refused")
	}
	if got := p.Mem().DirtyPageCount(); got != dirtyBefore {
		t.Fatalf("silent flip touched the dirty bitmap: %d -> %d", dirtyBefore, got)
	}
	m.Run(1000)
	if got := p.Reg(3); got != 5 {
		t.Fatalf("after silent flip r3 = %d, want 5 (stale cached decode executed)", got)
	}
	st := p.Mem().BlockCacheStats()
	if st.GenEvictions == 0 {
		t.Fatalf("flip was not caught by the generation check: %+v", st)
	}

	// Repair the page the way the attestation repair path does: a loud
	// Memory.Write of the pristine bytes.
	if err := p.Mem().Write(victim.Value, orig); err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	if got := p.Reg(3); got != 7 {
		t.Fatalf("after repair r3 = %d, want 7 (repaired page did not re-translate)", got)
	}
	if n := m.CacheDivergenceCount(); n != 0 {
		t.Fatalf("unexpected cache divergences: %v", m.CacheDivergences())
	}
}

// TestLockstepModeCatchesProtocolBypass is the oracle's negative
// control: corrupt text through a channel NO invalidation hook covers
// (direct page mutation, below every bookkeeping layer) and assert
// lockstep mode detects the stale decode, evicts it, and keeps guest
// behavior equal to the interpreter — while plain translate mode,
// with no protocol step to save it, replays the stale decode. If this
// test ever finds lockstep silent, the oracle is broken.
func TestLockstepModeCatchesProtocolBypass(t *testing.T) {
	build := func(mode ExecMode) (*Machine, *Process, uint64) {
		exe := buildExe(t, "test", `
.text
.global _start
_start:
loop:
	mov r3, 7
	jmp loop
`)
		m := NewMachine()
		m.SetExecMode(mode)
		p, err := m.Load(exe)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		m.Run(1000)
		victim, err := exe.Symbol("loop")
		if err != nil {
			t.Fatal(err)
		}
		return m, p, victim.Value
	}

	// Plain translate: the bypassing write is invisible, the stale
	// decode keeps executing. (This is exactly why every real write
	// channel MUST go through noteWrite/noteSilentWrite.)
	m, p, addr := build(ModeTranslate)
	p.mem.pages[addr/PageSize][addr%PageSize+2] ^= 0x02
	m.Run(1000)
	if got := p.Reg(3); got != 7 {
		t.Fatalf("translate mode noticed a bypassing write (r3=%d)? the test premise is broken", got)
	}

	// Lockstep: the per-dispatch re-decode catches it, records the
	// divergence, and executes the live bytes.
	m, p, addr = build(ModeLockstep)
	p.mem.pages[addr/PageSize][addr%PageSize+2] ^= 0x02
	m.Run(1000)
	if got := p.Reg(3); got != 5 {
		t.Fatalf("lockstep mode executed stale decode: r3 = %d, want 5", got)
	}
	if m.CacheDivergenceCount() == 0 {
		t.Fatal("lockstep mode did not record the divergence")
	}
}

// TestProtectFlushesCache: a VMA-layout change must flush the whole
// cache — fetch behavior depends on the layout, not just page bytes.
func TestProtectFlushesCache(t *testing.T) {
	m := NewMachine()
	m.SetExecMode(ModeTranslate)
	exe := buildExe(t, "test", corpusPrograms["loop-arith"])
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(300)
	if len(p.Mem().CachedBlocks()) == 0 {
		t.Fatal("nothing cached")
	}
	vmas := p.Mem().VMAs()
	v := vmas[0]
	if err := p.Mem().Protect(v.Start, v.End, v.Perm); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Mem().CachedBlocks()); got != 0 {
		t.Fatalf("%d blocks survived a layout change", got)
	}
	if st := p.Mem().BlockCacheStats(); st.LayoutFlush == 0 {
		t.Fatalf("layout flush not counted: %+v", st)
	}
	m.Run(200_000)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exit = %v/%d", p.Exited(), p.ExitCode())
	}
}

// TestCloneDoesNotShareCache: a cloned machine inherits the exec mode
// but starts with a cold cache over its own CoW address space.
func TestCloneDoesNotShareCache(t *testing.T) {
	m := NewMachine()
	m.SetExecMode(ModeTranslate)
	exe := buildExe(t, "test", corpusPrograms["loop-arith"])
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(300)
	if len(p.Mem().CachedBlocks()) == 0 {
		t.Fatal("nothing cached on the parent")
	}
	c := m.Clone()
	if c.ExecMode() != ModeTranslate {
		t.Fatalf("clone exec mode = %v", c.ExecMode())
	}
	cp, err := c.Process(p.PID())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cp.Mem().CachedBlocks()); got != 0 {
		t.Fatalf("clone inherited %d cached blocks", got)
	}
	c.Run(200_000)
	m.Run(200_000)
	if cp.ExitCode() != p.ExitCode() || cp.Insts() != p.Insts() {
		t.Fatalf("clone diverged: %d/%d vs %d/%d", cp.ExitCode(), cp.Insts(), p.ExitCode(), p.Insts())
	}
}

// TestForkChildColdCache: fork clones the address space; the child
// must re-translate in its own cache (no aliasing into the parent's).
func TestForkChildColdCache(t *testing.T) {
	runBoth(t, `
.text
.global _start
_start:
	mov r4, 0
	mov r0, 9        ; fork
	syscall
	cmp r0, 0
	je child
	mov r6, 0
ploop:
	add r6, 1
	cmp r6, 100
	jne ploop
	mov r0, 1
	mov r1, 3
	syscall
child:
	mov r6, 0
cloop:
	add r6, 2
	cmp r6, 200
	jne cloop
	mov r0, 1
	mov r1, 4
	syscall
`, ModeTranslate, 100_000)
}

// TestExecModeString covers the mode names used in logs and bench IDs.
func TestExecModeString(t *testing.T) {
	for mode, want := range map[ExecMode]string{
		ModeInterpret: "interpret",
		ModeTranslate: "translate",
		ModeLockstep:  "lockstep",
		ExecMode(9):   "ExecMode(9)",
	} {
		if got := mode.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(mode), got, want)
		}
	}
}
