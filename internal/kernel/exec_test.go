package kernel

import (
	"testing"
)

// TestAllALUForms exercises every register-register and
// register-immediate ALU form end to end.
func TestAllALUForms(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	; register-register shifts
	mov r1, 1
	mov r2, 4
	shl r1, r2          ; 16
	cmp r1, 16
	jne bad
	mov r2, 2
	shr r1, r2          ; 4
	cmp r1, 4
	jne bad
	; mul immediate
	mul r1, 25          ; 100
	cmp r1, 100
	jne bad
	; and/or/xor register forms
	mov r2, 0x0f
	and r1, r2          ; 100 & 15 = 4
	cmp r1, 4
	jne bad
	mov r2, 0x10
	or r1, r2           ; 20
	cmp r1, 20
	jne bad
	mov r2, 0x14
	xor r1, r2          ; 0
	cmp r1, 0
	jne bad
	; lea into arithmetic
	lea r3, anchor
	mov r4, =anchor
	cmp r3, r4
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
anchor:
	nop
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, 10000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

// TestShiftAmountsMasked: shift counts are masked to 6 bits like
// x86-64.
func TestShiftAmountsMasked(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 1
	mov r2, 64          ; 64 & 63 == 0: no-op shift
	shl r1, r2
	cmp r1, 1
	jne bad
	mov r2, 65          ; 65 & 63 == 1
	shl r1, r2
	cmp r1, 2
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

// TestByteLoadsZeroExtend.
func TestByteLoadsZeroExtend(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, =blob
	loadb r2, [r1+1]    ; 0xFF must zero-extend, not sign-extend
	cmp r2, 255
	jne bad
	; storeb writes only the low byte
	mov r3, 0x1234
	mov r4, =blob
	storeb [r4], r3
	loadb r5, [r4]
	cmp r5, 0x34
	jne bad
	loadb r5, [r4+1]    ; neighbor untouched
	cmp r5, 255
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
.data
blob: .byte 0x01, 0xFF, 0x02
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

// TestNegativeDisplacements.
func TestNegativeDisplacements(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, =words
	add r1, 16          ; point past the second word
	load r2, [r1-8]     ; second word
	cmp r2, 22
	jne bad
	load r2, [r1-16]    ; first word
	cmp r2, 11
	jne bad
	mov r3, 99
	store [r1-8], r3
	load r2, [r1-8]
	cmp r2, 99
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
.data
words: .quad 11, 22
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

// TestUnsignedDivisionSemantics.
func TestUnsignedDivisionSemantics(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, -8          ; as unsigned: 2^64-8
	mov r2, 2
	div r1, r2          ; 2^63-4
	mov r3, 1
	shl r3, 63
	sub r3, 4
	cmp r1, r3
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

// TestConditionalBranchMatrix checks every conditional against a
// signed comparison table.
func TestConditionalBranchMatrix(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	; r1 < r2
	mov r1, -3
	mov r2, 5
	cmp r1, r2
	jge bad
	jg bad
	je bad
	cmp r1, r2
	jl ok1
	jmp bad
ok1:
	cmp r1, r2
	jle ok2
	jmp bad
ok2:
	cmp r1, r2
	jne ok3
	jmp bad
ok3:
	; r1 == r2
	mov r1, 7
	mov r2, 7
	cmp r1, r2
	jne bad
	jl bad
	jg bad
	cmp r1, r2
	jge ok4
	jmp bad
ok4:
	cmp r1, r2
	jle ok5
	jmp bad
ok5:
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}
