package kernel

import (
	"bytes"
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
)

// buildCloneFixture assembles a machine by hand: one process with a
// mapped, written page, a bound listener shared across two descriptors
// (dup semantics), one established connection, and a disk file.
func buildCloneFixture(t *testing.T) (*Machine, *Process) {
	t.Helper()
	m := NewMachine()
	p := m.NewRawProcess("guest", 0)
	if err := p.Mem().Map(VMA{Start: 0x1000, End: 0x3000, Perm: delf.PermR | delf.PermW, Name: "heap", Anon: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.Mem().Write(0x1000, []byte("template")); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachListener(p, 3, 8080); err != nil {
		t.Fatal(err)
	}
	// fd 4 dups fd 3 (same *fdesc, as fork would produce).
	p.fds[4] = p.fds[3]
	if p.nextFD < 5 {
		p.nextFD = 5
	}
	hc, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	m.WriteFile("prog", []byte{1, 2, 3})
	m.AdvanceClock(42)
	return m, p
}

func TestCloneDeepCopiesGuestState(t *testing.T) {
	m, p := buildCloneFixture(t)
	c := m.Clone()

	if c.Clock() != m.Clock() {
		t.Errorf("clock: clone %d, template %d", c.Clock(), m.Clock())
	}
	cp, err := c.Process(p.PID())
	if err != nil {
		t.Fatalf("clone lost the process: %v", err)
	}
	got, err := cp.Mem().Read(0x1000, 8)
	if err != nil || !bytes.Equal(got, []byte("template")) {
		t.Fatalf("clone memory = %q, %v", got, err)
	}
	if blob, err := c.ReadFile("prog"); err != nil || !bytes.Equal(blob, []byte{1, 2, 3}) {
		t.Fatalf("clone disk = %v, %v", blob, err)
	}

	// Divergence: writes on either side must not leak to the other.
	if err := cp.Mem().Write(0x1000, []byte("clonated")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Mem().Read(0x1000, 8); !bytes.Equal(got, []byte("template")) {
		t.Fatalf("clone write leaked into template: %q", got)
	}
	if err := p.Mem().Write(0x2000, []byte("tmplonly")); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Mem().Read(0x2000, 8); err != nil {
		t.Fatal(err)
	}
	if got, _ := cp.Mem().Read(0x2000, 8); bytes.Equal(got, []byte("tmplonly")) {
		t.Fatalf("template write leaked into clone: %q", got)
	}
}

func TestCloneSharesPristinePagesCoW(t *testing.T) {
	m, p := buildCloneFixture(t)
	c := m.Clone()
	cp, _ := c.Process(p.PID())

	sharedBefore := cp.Mem().SharedPageCount()
	if sharedBefore == 0 {
		t.Fatal("clone shares no pages with the template")
	}
	if err := cp.Mem().Write(0x1000, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if got := cp.Mem().SharedPageCount(); got != sharedBefore-1 {
		t.Errorf("after one page write, shared pages = %d, want %d", got, sharedBefore-1)
	}
	// The template still reads its own byte.
	if got, _ := p.Mem().Read(0x1000, 1); got[0] != 't' {
		t.Errorf("template page mutated through CoW alias: %#x", got[0])
	}
}

func TestCloneNetworkIsIndependent(t *testing.T) {
	m, p := buildCloneFixture(t)
	c := m.Clone()

	// The clone has its own listener on the same port.
	hc, err := c.Dial(8080)
	if err != nil {
		t.Fatalf("clone listener gone: %v", err)
	}
	if _, err := hc.Write([]byte("to-clone")); err != nil {
		t.Fatal(err)
	}
	// The pre-clone pending connection was copied with its buffered
	// bytes, and draining it on the clone leaves the template's copy.
	cl, ok := c.net.listeners[8080]
	if !ok || len(cl.backlog) != 2 {
		t.Fatalf("clone backlog = %v", cl)
	}
	if string(cl.backlog[0].a2b) != "hello" {
		t.Fatalf("clone pending conn lost its bytes: %q", cl.backlog[0].a2b)
	}
	cl.backlog[0].a2b = nil
	tl := m.net.listeners[8080]
	if string(tl.backlog[0].a2b) != "hello" {
		t.Fatal("draining the clone's connection drained the template's too")
	}

	// Dup'd descriptors keep identity: killing the clone's process must
	// close its listener exactly once and not touch the template's.
	cp, _ := c.Process(p.PID())
	if cp.fds[3] != cp.fds[4] {
		t.Fatal("dup'd descriptors were split by the clone")
	}
	if err := c.Kill(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dial(8080); err == nil {
		t.Fatal("clone listener survived the kill")
	}
	if _, err := m.Dial(8080); err != nil {
		t.Fatalf("template listener closed by clone kill: %v", err)
	}
}

func TestCloneDoesNotCopyInstrumentation(t *testing.T) {
	m, _ := buildCloneFixture(t)
	fired := 0
	m.SetTickWatchdog(1, func(uint64) { fired++ })
	c := m.Clone()
	if c.wdFn != nil || c.tracer != nil || c.obs != nil || c.faultHook != nil {
		t.Fatal("host-side instrumentation leaked into the clone")
	}
}
