package kernel

import (
	"testing"
)

// bootEcho loads the echo server from kernel_test.go and lets it
// block in accept.
func bootEcho(t *testing.T) (*Machine, *Process) {
	t.Helper()
	m := NewMachine()
	exe := buildExe(t, "echo", echoServerSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000)
	return m, p
}

func TestHostConnWriteAfterGuestExit(t *testing.T) {
	m, p := bootEcho(t)
	conn, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(p.PID()); err != nil {
		t.Fatal(err)
	}
	// Connection was still in the backlog when the guest died.
	if !conn.Closed() && len(conn.ReadAllPeek()) == 0 {
		// Closed() requires bClosed; the queued conn was never
		// accepted — killing the owner closes the listener, and the
		// host write still succeeds into a dead buffer. Read must
		// not block or panic.
		var buf [8]byte
		if _, err := conn.Read(buf[:]); err == nil {
			// no data, open-looking socket: acceptable degenerate case
			t.Log("read on orphaned conn returned no error (buffered queue)")
		}
	}
	if _, err := m.Dial(8080); err == nil {
		t.Fatal("Dial succeeded after listener owner died")
	}
}

func TestHostConnReadDrainsIncrementally(t *testing.T) {
	m, _ := bootEcho(t)
	conn, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) >= 6 }, 1_000_000)
	var b [2]byte
	got := ""
	for i := 0; i < 3; i++ {
		n, err := conn.Read(b[:])
		if err != nil {
			t.Fatal(err)
		}
		got += string(b[:n])
	}
	if got != "abcdef" {
		t.Fatalf("incremental read = %q", got)
	}
	if n, _ := conn.Read(b[:]); n != 0 {
		t.Fatal("extra data after drain")
	}
}

func TestHostConnCloseStopsWrites(t *testing.T) {
	m, _ := bootEcho(t)
	conn, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
	if conn.ID() == 0 {
		t.Error("connection has no ID")
	}
}

func TestGuestReadSeesEOFOnHostClose(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "eofer", `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 9000
	syscall
	mov r0, 7            ; accept
	mov r1, r8
	syscall
	mov r9, r0
	mov r0, 3            ; read -> blocks until data or EOF
	mov r1, r9
	mov r2, =buf
	mov r3, 16
	syscall
	mov r1, r0           ; exit with read result (0 = clean EOF)
	mov r0, 1
	syscall
.bss
buf: .space 16
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000)
	conn, err := m.Dial(9000)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000) // guest accepts, blocks in read
	conn.Close()
	m.Run(100000)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exit = %v/%d (want clean EOF read)", p.Exited(), p.ExitCode())
	}
}

func TestListenerBacklogOrder(t *testing.T) {
	m, _ := bootEcho(t)
	c1, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write([]byte("two")); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(func() bool {
		return len(c1.ReadAllPeek()) >= 3 && len(c2.ReadAllPeek()) >= 3
	}, 2_000_000)
	if got := string(c1.ReadAll()); got != "one" {
		t.Errorf("c1 = %q", got)
	}
	if got := string(c2.ReadAll()); got != "two" {
		t.Errorf("c2 = %q", got)
	}
}

func TestSharedListenerSurvivesOneSiblingClosing(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "sharer", `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 9100
	syscall
	mov r0, 9            ; fork: both share the listener
	syscall
	cmp r0, 0
	je child
	; parent: close its copy, then idle — listener must stay alive
	; because the child still holds it
	mov r0, 8
	mov r1, r8
	syscall
ploop:
	mov r0, 14
	syscall
	jmp ploop
child:
	mov r0, 7            ; child accepts
	mov r1, r8
	syscall
	mov r9, r0
	mov r0, 2
	mov r1, r9
	lea r2, msg
	mov r3, 2
	syscall
	mov r0, 1
	mov r1, 0
	syscall
.rodata
msg: .ascii "hi"
`)
	if _, err := m.Load(exe); err != nil {
		t.Fatal(err)
	}
	m.Run(50000)
	conn, err := m.Dial(9100)
	if err != nil {
		t.Fatalf("listener died when parent closed its copy: %v", err)
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) >= 2 }, 1_000_000)
	if got := string(conn.ReadAll()); got != "hi" {
		t.Fatalf("child response = %q", got)
	}
}

func TestAttachConnSynthesizesMissingConnection(t *testing.T) {
	m := NewMachine()
	p := m.NewRawProcess("ghost", 0)
	// Re-attach a connection ID that no longer exists: must create a
	// closed-on-far-side placeholder, not fail.
	m.AttachConn(p, 5, 999, 1234, false)
	fds := p.FDs()
	found := false
	for _, fd := range fds {
		if fd.FD == 5 && fd.Kind == FDConn && fd.ConnID == 999 {
			found = true
		}
	}
	if !found {
		t.Fatalf("synthesized conn missing: %+v", fds)
	}
}
