package kernel

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/delf"
)

func rwVMA(start, end uint64) VMA {
	return VMA{Start: start, End: end, Perm: delf.PermR | delf.PermW, Name: "test", Anon: true}
}

func TestMapAndRW(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x3000)); err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4}
	if err := m.Write(0x1ffe, data); err != nil { // crosses page boundary
		t.Fatal(err)
	}
	got, err := m.Read(0x1ffe, 4)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read = %v, %v", got, err)
	}
	if _, err := m.Read(0x4000, 1); !errors.Is(err, ErrUnmapped) {
		t.Errorf("read unmapped err = %v", err)
	}
	if err := m.Write(0x2ffd, data); !errors.Is(err, ErrUnmapped) {
		t.Errorf("write past end err = %v", err)
	}
}

func TestMapValidation(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x1000)); err == nil {
		t.Error("empty VMA accepted")
	}
	if err := m.Map(VMA{Start: 0x1001, End: 0x2000}); err == nil {
		t.Error("unaligned VMA accepted")
	}
	if err := m.Map(rwVMA(0x1000, 0x3000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(rwVMA(0x2000, 0x4000)); !errors.Is(err, ErrVMAOverlap) {
		t.Errorf("overlap err = %v", err)
	}
}

func TestUnmapSplitsVMA(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x5000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1000, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x4000, []byte{8}); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(0x2000, 0x4000); err != nil {
		t.Fatal(err)
	}
	vmas := m.VMAs()
	if len(vmas) != 2 || vmas[0].End != 0x2000 || vmas[1].Start != 0x4000 {
		t.Fatalf("vmas after unmap = %v", vmas)
	}
	if _, err := m.Read(0x3000, 1); !errors.Is(err, ErrUnmapped) {
		t.Error("unmapped middle still readable")
	}
	// Data outside the hole survives.
	if b, _ := m.Read(0x1000, 1); b[0] != 9 {
		t.Error("left data lost")
	}
	if b, _ := m.Read(0x4000, 1); b[0] != 8 {
		t.Error("right data lost")
	}
	if err := m.Unmap(0x8000, 0x9000); !errors.Is(err, ErrNoVMA) {
		t.Errorf("unmap nothing err = %v", err)
	}
}

func TestProtect(t *testing.T) {
	m := newMemory()
	if err := m.Map(VMA{Start: 0x1000, End: 0x4000, Perm: delf.PermR | delf.PermX, Name: "text"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0x2000, 0x3000, delf.PermR); err != nil {
		t.Fatal(err)
	}
	vmas := m.VMAs()
	if len(vmas) != 3 {
		t.Fatalf("vmas = %v", vmas)
	}
	if vmas[1].Perm != delf.PermR {
		t.Errorf("middle perm = %v", vmas[1].Perm)
	}
	if _, err := m.FetchGuest(0x2000, 1); !errors.Is(err, ErrPerm) {
		t.Errorf("fetch from NX err = %v", err)
	}
	if _, err := m.FetchGuest(0x1000, 1); err != nil {
		t.Errorf("fetch from X err = %v", err)
	}
	if err := m.Protect(0x3000, 0x6000, delf.PermR); !errors.Is(err, ErrNoVMA) {
		t.Errorf("partial protect err = %v", err)
	}
}

func TestGuestPermChecks(t *testing.T) {
	m := newMemory()
	if err := m.Map(VMA{Start: 0x1000, End: 0x2000, Perm: delf.PermR, Name: "ro"}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteGuest(0x1000, []byte{1}); !errors.Is(err, ErrPerm) {
		t.Errorf("guest write to RO err = %v", err)
	}
	if _, err := m.ReadGuest(0x1000, 8); err != nil {
		t.Errorf("guest read err = %v", err)
	}
	// Kernel view bypasses permissions.
	if err := m.Write(0x1000, []byte{1}); err != nil {
		t.Errorf("kernel write err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x2000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1000, []byte{42}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.Write(0x1000, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.Read(0x1000, 1); b[0] != 42 {
		t.Error("clone write leaked into original")
	}
	if err := c.Unmap(0x1000, 0x2000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(0x1000, 1); err != nil {
		t.Error("clone unmap affected original")
	}
}

func TestU64RoundTrip(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x2000)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteU64(0x1008, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(0x1008)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
}

func TestPopulatedPagesAndSetPage(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x10000)); err != nil {
		t.Fatal(err)
	}
	if got := m.PopulatedPages(); len(got) != 0 {
		t.Fatalf("fresh mapping already populated: %v", got)
	}
	if err := m.Write(0x3000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x5500, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got := m.PopulatedPages()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("PopulatedPages = %v", got)
	}
	if m.PageData(3) == nil || m.PageData(4) != nil {
		t.Error("PageData wrong")
	}
	if err := m.SetPage(7, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPage(8, make([]byte, 7)); err == nil {
		t.Error("short SetPage accepted")
	}
}

// TestPageDataReturnsCopy: mutating the slice PageData hands out must
// not write through into live guest memory (that is what made a
// "read" accessor silently dangerous).
func TestPageDataReturnsCopy(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x4000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1000, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	got := m.PageData(1)
	if got == nil || got[0] != 0xAA {
		t.Fatalf("PageData(1) = %v", got)
	}
	got[0] = 0x55
	if live, _ := m.Read(0x1000, 1); live[0] != 0xAA {
		t.Fatalf("PageData aliased live memory: %#x", live[0])
	}
	// The unsafe variant is the aliasing one, by contract.
	raw := m.PageDataUnsafe(1)
	if raw == nil || raw[0] != 0xAA {
		t.Fatalf("PageDataUnsafe(1) = %v", raw)
	}
}

// TestDirtyPageTracking: the dirty bitmap records exactly the pages
// written (or first populated) since the last snapshot, and
// SnapshotDirty drains it.
func TestDirtyPageTracking(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x10000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x3000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x5ff8, make([]byte, 16)); err != nil { // crosses into page 6
		t.Fatal(err)
	}
	dirty := m.SnapshotDirty()
	if len(dirty) != 3 || dirty[0] != 3 || dirty[1] != 5 || dirty[2] != 6 {
		t.Fatalf("SnapshotDirty = %v, want [3 5 6]", dirty)
	}
	if n := m.DirtyPageCount(); n != 0 {
		t.Fatalf("bitmap not cleared: %d", n)
	}
	// No writes since the snapshot: an idle memory reports nothing.
	if dirty := m.SnapshotDirty(); len(dirty) != 0 {
		t.Fatalf("idle SnapshotDirty = %v", dirty)
	}
	// Reads of already-populated pages stay clean; SetPage dirties.
	if _, err := m.Read(0x3000, 8); err != nil {
		t.Fatal(err)
	}
	if n := m.DirtyPageCount(); n != 0 {
		t.Fatalf("read dirtied pages: %d", n)
	}
	if err := m.SetPage(9, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if dirty := m.SnapshotDirty(); len(dirty) != 1 || dirty[0] != 9 {
		t.Fatalf("SetPage dirty = %v, want [9]", dirty)
	}
	// A page dirtied then unmapped is not reported (no backing left).
	if err := m.Write(0x4000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(0x4000, 0x5000); err != nil {
		t.Fatal(err)
	}
	if dirty := m.SnapshotDirty(); len(dirty) != 0 {
		t.Fatalf("unmapped page reported dirty: %v", dirty)
	}
	// Clone carries the bitmap.
	if err := m.Write(0x3000, []byte{2}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if dirty := c.SnapshotDirty(); len(dirty) != 1 || dirty[0] != 3 {
		t.Fatalf("clone dirty = %v, want [3]", dirty)
	}
	if n := m.DirtyPageCount(); n != 1 {
		t.Fatalf("clone snapshot leaked into original: %d", n)
	}
}

// Property: writes then reads at random offsets round-trip inside a
// mapped region.
func TestQuickMemoryRoundTrip(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x10000, 0x20000)); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		addr := 0x10000 + uint64(off)%0x8000
		if err := m.Write(addr, data); err != nil {
			return false
		}
		got, err := m.Read(addr, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: VMA table stays sorted and non-overlapping under
// map/unmap sequences.
func TestQuickVMAInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		m := newMemory()
		for _, op := range ops {
			start := uint64(op%64) * PageSize
			n := uint64(op/64%8+1) * PageSize
			if op%2 == 0 {
				_ = m.Map(VMA{Start: start, End: start + n, Perm: delf.PermR, Name: "q"})
			} else {
				_ = m.Unmap(start, start+n)
			}
			vmas := m.VMAs()
			for i := 1; i < len(vmas); i++ {
				if vmas[i-1].End > vmas[i].Start {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
