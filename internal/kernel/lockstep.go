package kernel

// The differential-execution oracle for the translating engine: run
// the reference interpreter and the block-cache engine side by side on
// two clones of the same machine, drive them with identical host
// actions, and diff every piece of guest-visible state after every
// scheduler round. Any disagreement — a register, a tick count, a page
// byte, a dirty bit, a byte of socket traffic — is a translation bug,
// caught at the round where it first appears rather than megaticks
// later when a workload assertion finally trips.

import (
	"bytes"
	"fmt"
	"sort"
)

// Divergence is one observed disagreement between the reference
// interpreter and the engine under test.
type Divergence struct {
	Round int    // scheduler round after which the diff was taken
	PID   int    // -1 for machine-level state
	Field string // what disagreed ("rip", "clock", "page bytes", ...)
	Ref   string // reference interpreter's value
	Tx    string // engine-under-test's value
}

func (d Divergence) String() string {
	who := "machine"
	if d.PID >= 0 {
		who = fmt.Sprintf("pid %d", d.PID)
	}
	return fmt.Sprintf("round %d %s %s: interpreter=%s engine=%s", d.Round, who, d.Field, d.Ref, d.Tx)
}

// maxDivergences bounds the stored reports; comparison short-circuits
// once the bound is reached (one divergence typically cascades).
const maxDivergences = 32

// Lockstep drives two clones of one machine — Ref on the reference
// interpreter, Tx on the engine under test — through identical
// schedules and host actions, diffing all guest-visible state after
// every round.
type Lockstep struct {
	Ref *Machine // reference interpreter (ModeInterpret)
	Tx  *Machine // engine under test (ModeTranslate or ModeLockstep)

	round int
	divs  []Divergence
}

// NewLockstep clones m twice: the reference clone runs the
// interpreter, the test clone runs mode (ModeTranslate, or
// ModeLockstep for the additional per-dispatch decode verification).
// The source machine is not touched. Host-side hooks are not cloned
// (see Machine.Clone); install any needed on both via Do.
func NewLockstep(m *Machine, mode ExecMode) *Lockstep {
	ref := m.Clone()
	ref.SetExecMode(ModeInterpret)
	tx := m.Clone()
	tx.SetExecMode(mode)
	return &Lockstep{Ref: ref, Tx: tx}
}

// Do applies the same host action to both machines — driving
// requests into a HostConn, injecting a fault, triggering a
// live-patch. Determinism is the caller's job: the action must make
// the same mutations on both (use only machine-derived state, no
// shared RNG advanced by one call).
func (l *Lockstep) Do(f func(*Machine)) {
	f(l.Ref)
	f(l.Tx)
}

// RunRound runs one scheduler round on both machines, then diffs all
// guest-visible state. Returns the instructions retired by each.
func (l *Lockstep) RunRound() (refN, txN uint64) {
	refN = l.Ref.RunRound()
	txN = l.Tx.RunRound()
	l.round++
	l.compare()
	return refN, txN
}

// Run executes up to rounds scheduler rounds, stopping early when
// both machines go idle (every process blocked or exited) or the
// divergence bound is hit. Returns the number of rounds executed.
func (l *Lockstep) Run(rounds int) int {
	for i := 0; i < rounds; i++ {
		refN, txN := l.RunRound()
		if refN == 0 && txN == 0 {
			return i + 1
		}
		if len(l.divs) >= maxDivergences {
			return i + 1
		}
	}
	return rounds
}

// Divergences returns every disagreement observed so far; nil (the
// state every test asserts) means the engines are indistinguishable.
func (l *Lockstep) Divergences() []Divergence {
	return append([]Divergence(nil), l.divs...)
}

func (l *Lockstep) report(pid int, field, ref, tx string) {
	if len(l.divs) >= maxDivergences {
		return
	}
	l.divs = append(l.divs, Divergence{Round: l.round, PID: pid, Field: field, Ref: ref, Tx: tx})
}

// compare diffs every piece of guest-visible state between the two
// machines: the virtual clock, the process table, per-process
// registers/RIP/flags/retired-instruction counts/exit state/stdio,
// address-space layout, populated page bytes, dirty bitmaps, and the
// virtual network's buffers — plus the Tx machine's own lockstep
// decode-verification log when it runs in ModeLockstep.
func (l *Lockstep) compare() {
	a, b := l.Ref, l.Tx
	if a.clock != b.clock {
		l.report(-1, "clock", fmt.Sprint(a.clock), fmt.Sprint(b.clock))
	}
	if n := b.CacheDivergenceCount(); n != 0 {
		l.report(-1, "cache decode divergences", "0", fmt.Sprint(n))
	}

	pids := map[int]bool{}
	for pid := range a.procs {
		pids[pid] = true
	}
	for pid := range b.procs {
		pids[pid] = true
	}
	sorted := make([]int, 0, len(pids))
	for pid := range pids {
		sorted = append(sorted, pid)
	}
	sort.Ints(sorted)
	for _, pid := range sorted {
		pa, pb := a.procs[pid], b.procs[pid]
		if (pa == nil) != (pb == nil) {
			l.report(pid, "process table", fmt.Sprint(pa != nil), fmt.Sprint(pb != nil))
			continue
		}
		l.compareProc(pid, pa, pb)
	}
	l.compareNet()
}

func (l *Lockstep) compareProc(pid int, pa, pb *Process) {
	if pa.regs != pb.regs {
		l.report(pid, "regs", fmt.Sprint(pa.regs), fmt.Sprint(pb.regs))
	}
	if pa.rip != pb.rip {
		l.report(pid, "rip", fmt.Sprintf("%#x", pa.rip), fmt.Sprintf("%#x", pb.rip))
	}
	if pa.zf != pb.zf || pa.lf != pb.lf {
		l.report(pid, "flags", fmt.Sprintf("zf=%v lf=%v", pa.zf, pa.lf), fmt.Sprintf("zf=%v lf=%v", pb.zf, pb.lf))
	}
	if pa.insts != pb.insts {
		l.report(pid, "retired insts", fmt.Sprint(pa.insts), fmt.Sprint(pb.insts))
	}
	if pa.exited != pb.exited || pa.exitCode != pb.exitCode || pa.killedBy != pb.killedBy {
		l.report(pid, "exit state",
			fmt.Sprintf("exited=%v code=%d sig=%d", pa.exited, pa.exitCode, pa.killedBy),
			fmt.Sprintf("exited=%v code=%d sig=%d", pb.exited, pb.exitCode, pb.killedBy))
	}
	if !bytes.Equal(pa.stdout, pb.stdout) {
		l.report(pid, "stdout", fmt.Sprintf("%d bytes %q", len(pa.stdout), trunc(pa.stdout)), fmt.Sprintf("%d bytes %q", len(pb.stdout), trunc(pb.stdout)))
	}
	if !bytes.Equal(pa.stderr, pb.stderr) {
		l.report(pid, "stderr", fmt.Sprintf("%d bytes %q", len(pa.stderr), trunc(pa.stderr)), fmt.Sprintf("%d bytes %q", len(pb.stderr), trunc(pb.stderr)))
	}
	l.compareMem(pid, pa.mem, pb.mem)
}

func (l *Lockstep) compareMem(pid int, ma, mb *Memory) {
	va, vb := ma.VMAs(), mb.VMAs()
	if fmt.Sprint(va) != fmt.Sprint(vb) {
		l.report(pid, "vmas", fmt.Sprint(va), fmt.Sprint(vb))
	}
	// Populated page SETS must match exactly: the engines fetch the
	// same windows on first execution, so even demand-population is
	// part of the equivalence claim.
	ppa, ppb := ma.PopulatedPages(), mb.PopulatedPages()
	if !equalU64(ppa, ppb) {
		l.report(pid, "populated pages", fmt.Sprint(ppa), fmt.Sprint(ppb))
		return
	}
	for _, pn := range ppa {
		if !bytes.Equal(ma.pages[pn], mb.pages[pn]) {
			l.report(pid, fmt.Sprintf("page %#x bytes", pn), "-", "differs")
			break
		}
	}
	da, db := ma.DirtyPages(), mb.DirtyPages()
	if !equalU64(da, db) {
		l.report(pid, "dirty pages", fmt.Sprint(da), fmt.Sprint(db))
	}
}

func (l *Lockstep) compareNet() {
	a, b := l.Ref.net, l.Tx.net
	ids := map[uint64]bool{}
	for id := range a.conns {
		ids[id] = true
	}
	for id := range b.conns {
		ids[id] = true
	}
	for id := range ids {
		ca, cb := a.conns[id], b.conns[id]
		if (ca == nil) != (cb == nil) {
			l.report(-1, fmt.Sprintf("conn %d", id), fmt.Sprint(ca != nil), fmt.Sprint(cb != nil))
			continue
		}
		if !bytes.Equal(ca.a2b, cb.a2b) || !bytes.Equal(ca.b2a, cb.b2a) ||
			ca.aClosed != cb.aClosed || ca.bClosed != cb.bClosed {
			l.report(-1, fmt.Sprintf("conn %d state", id),
				fmt.Sprintf("a2b=%d b2a=%d aC=%v bC=%v", len(ca.a2b), len(ca.b2a), ca.aClosed, ca.bClosed),
				fmt.Sprintf("a2b=%d b2a=%d aC=%v bC=%v", len(cb.a2b), len(cb.b2a), cb.aClosed, cb.bClosed))
		}
	}
}

func trunc(b []byte) []byte {
	if len(b) > 64 {
		return b[:64]
	}
	return b
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
