package kernel

import (
	"crypto/sha256"
	"sort"

	"github.com/dynacut/dynacut/internal/delf"
)

// zeroPageDigest is the digest of an all-zero page: a mapped page that
// was never populated reads as zeros, so it hashes as zeros too.
var zeroPageDigest = sha256.Sum256(make([]byte, PageSize))

// HashPages returns the SHA-256 digest of each requested page. A page
// that is mapped but never populated hashes as a zero page; the caller
// is expected to pass page numbers it knows are mapped (ExecPages).
// Hashing never allocates backing or perturbs dirty/CoW state — it is
// a pure observation, safe to run at a scheduler-round boundary.
func (m *Memory) HashPages(pns []uint64) map[uint64][sha256.Size]byte {
	out := make(map[uint64][sha256.Size]byte, len(pns))
	for _, pn := range pns {
		if pg, ok := m.pages[pn]; ok {
			out[pn] = sha256.Sum256(pg)
		} else {
			out[pn] = zeroPageDigest
		}
	}
	return out
}

// ExecPages returns the sorted page numbers of every populated page
// inside an executable VMA — the text footprint an attestation oracle
// covers. Unpopulated pages are excluded: they have no bytes to
// corrupt and would only bloat the digest set.
func (m *Memory) ExecPages() []uint64 {
	var pns []uint64
	for _, v := range m.vmas {
		if v.Perm&delf.PermX == 0 {
			continue
		}
		for pn := v.Start / PageSize; pn < (v.End+PageSize-1)/PageSize; pn++ {
			if _, ok := m.pages[pn]; ok {
				pns = append(pns, pn)
			}
		}
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	return pns
}

// FlipBits silently XORs one byte of a populated page: the
// fault-injection primitive for modeling a cosmic-ray bit flip or a
// rogue DMA write. It deliberately bypasses every bookkeeping channel
// a loud write would touch — the page is NOT marked dirty (so an
// incremental checkpoint will not carry the corruption and no trap
// fires), making the flip invisible to everything except a hash of
// the live bytes. CoW backing IS broken first: physical corruption is
// per-replica, it must never leak into siblings sharing the page.
// Returns false if the page is unpopulated (nothing to corrupt).
func (m *Memory) FlipBits(addr uint64, mask byte) bool {
	pn := addr / PageSize
	if _, ok := m.pages[pn]; !ok {
		return false
	}
	m.breakCoW(pn)
	m.pages[pn][addr%PageSize] ^= mask
	// The one bookkeeping channel a silent flip must touch: the text
	// generation counter. Without it the block cache would keep
	// replaying the pre-flip decode — executing code that no longer
	// exists in memory — while the interpreter fetches the corrupted
	// bytes. The dirty bitmap stays untouched (see noteSilentWrite).
	m.noteSilentWrite(pn)
	return true
}
