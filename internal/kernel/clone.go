package kernel

// Machine cloning: the fleet layer (internal/fleet) spawns N replica
// guests from one booted template instead of paying N boots. The clone
// is a deep copy of all guest-visible state — process table, address
// spaces (copy-on-write, so pristine pages are shared until written),
// virtual network, disk, clock — while host-side instrumentation
// (tracer, hooks, observer, watchdog) is deliberately NOT copied: each
// replica gets its own wiring, and sharing a tracer across machines
// would corrupt its per-machine bookkeeping.

// Clone returns an independent deep copy of the machine. Guest state
// (processes, registers, memory, signal handlers, descriptors, bound
// listeners, established connections, disk files, virtual clock, PID
// allocator) is duplicated; page contents are shared copy-on-write via
// Memory.CloneCoW. Tracer, nudge/syscall/fault hooks, observer and
// tick watchdog are left nil on the clone.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		procs:    make(map[int]*Process, len(m.procs)),
		nextPID:  m.nextPID,
		clock:    m.clock,
		execMode: m.execMode,
		net: &network{
			listeners: make(map[uint16]*listener, len(m.net.listeners)),
			conns:     make(map[uint64]*conn, len(m.net.conns)),
			nextConn:  m.net.nextConn,
		},
		disk: make(map[string][]byte, len(m.disk)),
	}
	// Disk blobs are immutable once written (WriteFile copies), so the
	// byte slices can be shared; only the map itself is per-machine.
	for name, blob := range m.disk {
		c.disk[name] = blob
	}

	// Network: copy every connection and listener once, preserving the
	// sharing topology (a listener inherited across fork is one object
	// referenced by many descriptors).
	connMap := make(map[*conn]*conn, len(m.net.conns))
	cloneConn := func(cn *conn) *conn {
		if cn == nil {
			return nil
		}
		if nc, ok := connMap[cn]; ok {
			return nc
		}
		nc := &conn{
			id: cn.id, port: cn.port,
			a2b:     append([]byte(nil), cn.a2b...),
			b2a:     append([]byte(nil), cn.b2a...),
			aClosed: cn.aClosed, bClosed: cn.bClosed,
		}
		connMap[cn] = nc
		return nc
	}
	for id, cn := range m.net.conns {
		c.net.conns[id] = cloneConn(cn)
	}
	lstMap := make(map[*listener]*listener, len(m.net.listeners))
	cloneListener := func(l *listener) *listener {
		if l == nil {
			return nil
		}
		if nl, ok := lstMap[l]; ok {
			return nl
		}
		nl := &listener{port: l.port, closed: l.closed}
		for _, bc := range l.backlog {
			nl.backlog = append(nl.backlog, cloneConn(bc))
		}
		lstMap[l] = nl
		return nl
	}
	for port, l := range m.net.listeners {
		c.net.listeners[port] = cloneListener(l)
	}

	// Processes. Descriptors use dup semantics (one *fdesc shared
	// across fork), so identity must be preserved: closeFD/referenced
	// compare fdesc pointers.
	fdMap := make(map[*fdesc]*fdesc)
	for pid, p := range m.procs {
		np := &Process{
			pid:        p.pid,
			parent:     p.parent,
			name:       p.name,
			regs:       p.regs,
			rip:        p.rip,
			zf:         p.zf,
			lf:         p.lf,
			mem:        p.mem.CloneCoW(),
			sig:        make(map[Signal]Sigaction, len(p.sig)),
			fds:        make(map[int]*fdesc, len(p.fds)),
			nextFD:     p.nextFD,
			exited:     p.exited,
			exitCode:   p.exitCode,
			killedBy:   p.killedBy,
			stdout:     append([]byte(nil), p.stdout...),
			stderr:     append([]byte(nil), p.stderr...),
			insts:      p.insts,
			blockStart: p.blockStart,
			modules:    append([]Module(nil), p.modules...),
		}
		for s, act := range p.sig {
			np.sig[s] = act
		}
		if p.sysFilter != nil {
			np.sysFilter = make(map[uint64]bool, len(p.sysFilter))
			for nr, ok := range p.sysFilter {
				np.sysFilter[nr] = ok
			}
		}
		for fd, d := range p.fds {
			nd, ok := fdMap[d]
			if !ok {
				nd = &fdesc{
					kind:  d.kind,
					stdNo: d.stdNo,
					lst:   cloneListener(d.lst),
					cn:    cloneConn(d.cn),
					sideA: d.sideA,
				}
				fdMap[d] = nd
			}
			np.fds[fd] = nd
		}
		c.procs[pid] = np
	}
	return c
}
