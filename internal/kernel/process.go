package kernel

import (
	"fmt"

	"github.com/dynacut/dynacut/internal/isa"
)

// Signal numbers (Linux values for familiarity).
type Signal int

// Signals the simulated kernel can deliver.
const (
	SIGILL  Signal = 4
	SIGTRAP Signal = 5 // raised by INT3; DynaCut's blocking mechanism
	SIGFPE  Signal = 8
	SIGSEGV Signal = 11
	SIGCHLD Signal = 17 // recorded but never delivered; reserved
	SIGSYS  Signal = 31 // syscall denied by the process's filter
)

func (s Signal) String() string {
	switch s {
	case SIGILL:
		return "SIGILL"
	case SIGTRAP:
		return "SIGTRAP"
	case SIGFPE:
		return "SIGFPE"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGCHLD:
		return "SIGCHLD"
	case SIGSYS:
		return "SIGSYS"
	default:
		return fmt.Sprintf("SIG%d", int(s))
	}
}

// Sigaction holds a registered user signal handler. A zero Handler
// means default action (terminate). Restorer is the address the
// handler returns to; it must issue the sigreturn syscall.
type Sigaction struct {
	Handler  uint64
	Restorer uint64
}

// Signal frame layout pushed by the kernel on delivery (all offsets
// from the frame pointer passed to the handler in r3):
//
//	+0   saved RIP (the faulting instruction; handlers may rewrite it)
//	+8   saved flags (bit0 = Z, bit1 = L)
//	+16  saved r0..r15 (16 × 8 bytes; r15 is the pre-frame SP)
//
// Below the frame the kernel pushes the restorer address so that the
// handler's RET transfers to the restorer stub.
const (
	FrameRIPOff   = 0
	FrameFlagsOff = 8
	FrameRegsOff  = 16
	FrameSize     = 16 + 8*isa.NumRegisters
)

// Process is one simulated process.
type Process struct {
	pid    int
	parent int
	name   string

	regs   [isa.NumRegisters]uint64
	rip    uint64
	zf     bool
	lf     bool
	mem    *Memory
	sig    map[Signal]Sigaction
	fds    map[int]*fdesc
	nextFD int

	exited   bool
	exitCode int
	killedBy Signal

	stdout []byte
	stderr []byte

	insts      uint64 // retired instructions
	blockStart uint64 // current basic-block head (tracing)

	modules []Module // mapped binaries, in load order

	// sysFilter, when non-nil, is the seccomp-style allow list: a
	// syscall number absent from it kills the process with SIGSYS.
	sysFilter map[uint64]bool
}

// PID returns the process ID.
func (p *Process) PID() int { return p.pid }

// Parent returns the parent PID (0 for the initial process).
func (p *Process) Parent() int { return p.parent }

// Name returns the program name the process was loaded from.
func (p *Process) Name() string { return p.name }

// Exited reports whether the process has terminated.
func (p *Process) Exited() bool { return p.exited }

// ExitCode returns the exit status (128+signal for signal deaths).
func (p *Process) ExitCode() int { return p.exitCode }

// KilledBy returns the fatal signal, or 0 for a normal exit.
func (p *Process) KilledBy() Signal { return p.killedBy }

// Stdout returns everything the process wrote to fd 1.
func (p *Process) Stdout() []byte { return append([]byte(nil), p.stdout...) }

// Stderr returns everything the process wrote to fd 2.
func (p *Process) Stderr() []byte { return append([]byte(nil), p.stderr...) }

// Mem exposes the address space (debugger/checkpoint view).
func (p *Process) Mem() *Memory { return p.mem }

// RIP returns the current instruction pointer.
func (p *Process) RIP() uint64 { return p.rip }

// SetRIP moves the instruction pointer (restore path).
func (p *Process) SetRIP(v uint64) { p.rip = v; p.blockStart = v }

// Reg returns register r.
func (p *Process) Reg(r isa.Register) uint64 { return p.regs[r] }

// SetReg sets register r (restore path).
func (p *Process) SetReg(r isa.Register, v uint64) { p.regs[r] = v }

// Flags returns the Z and L flags packed as in the signal frame.
func (p *Process) Flags() uint64 {
	var f uint64
	if p.zf {
		f |= 1
	}
	if p.lf {
		f |= 2
	}
	return f
}

// SetFlags unpacks flags (restore path).
func (p *Process) SetFlags(f uint64) {
	p.zf = f&1 != 0
	p.lf = f&2 != 0
}

// Insts returns the number of retired instructions.
func (p *Process) Insts() uint64 { return p.insts }

// Sigactions returns a copy of the registered signal handlers.
func (p *Process) Sigactions() map[Signal]Sigaction {
	out := make(map[Signal]Sigaction, len(p.sig))
	for k, v := range p.sig {
		out[k] = v
	}
	return out
}

// SetSigaction registers a handler (restore path; guests use the
// sigaction syscall).
func (p *Process) SetSigaction(s Signal, act Sigaction) {
	if act.Handler == 0 {
		delete(p.sig, s)
		return
	}
	p.sig[s] = act
}

// SyscallFilter returns the allow list (sorted), or nil when all
// system calls are permitted.
func (p *Process) SyscallFilter() []uint64 {
	if p.sysFilter == nil {
		return nil
	}
	out := make([]uint64, 0, len(p.sysFilter))
	for nr := range p.sysFilter {
		out = append(out, nr)
	}
	sortU64(out)
	return out
}

// SetSyscallFilter installs a seccomp-style allow list (nil removes
// the filter). Like real seccomp, callers should always include
// SysExit and SysSigreturn or the process cannot even die cleanly.
func (p *Process) SetSyscallFilter(allowed []uint64) {
	if allowed == nil {
		p.sysFilter = nil
		return
	}
	p.sysFilter = make(map[uint64]bool, len(allowed))
	for _, nr := range allowed {
		p.sysFilter[nr] = true
	}
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

// FDs describes the open descriptors for checkpointing, sorted by fd.
func (p *Process) FDs() []FDInfo {
	out := make([]FDInfo, 0, len(p.fds))
	for fd := 0; fd < p.nextFD; fd++ {
		d, ok := p.fds[fd]
		if !ok {
			continue
		}
		info := FDInfo{FD: fd, Kind: d.kind}
		switch d.kind {
		case FDStdio:
			info.StdNo = d.stdNo
		case FDListener:
			info.Port = d.lst.port
		case FDConn:
			info.ConnID = d.cn.id
			info.Port = d.cn.port
			info.SideA = d.sideA
		}
		out = append(out, info)
	}
	return out
}

func newProcess(pid, parent int, name string) *Process {
	p := &Process{
		pid:    pid,
		parent: parent,
		name:   name,
		mem:    newMemory(),
		sig:    map[Signal]Sigaction{},
		fds:    map[int]*fdesc{},
	}
	for i := 0; i < 3; i++ {
		p.fds[i] = &fdesc{kind: FDStdio, stdNo: i}
	}
	p.nextFD = 3
	return p
}

func (p *Process) allocFD(d *fdesc) int {
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = d
	return fd
}
