package kernel

// FuzzBlockCacheDecode throws random programs at the translating
// engine — both structurally valid ones from the internal/disasm
// generator (optionally corrupted with an INT3 or a random byte
// smashed mid-stream) and entirely raw byte soup — and checks the
// three properties the satellite demands:
//
//  1. The translator never panics, whatever it decodes.
//  2. No cached block ever crosses a block terminator: an INT3 (or
//     any trap, branch, call, return, or syscall) may only appear as
//     a block's final instruction — the one exception being the
//     direct unconditional JMPs a superblock chains across.
//  3. Execution through the cache never diverges from single-step
//     interpretation: final registers, RIP, flags, retired counts,
//     clock and exit state must match instruction-for-instruction,
//     and lockstep mode must find zero stale decodes.

import (
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/disasm"
	"github.com/dynacut/dynacut/internal/isa"
)

const fuzzBase uint64 = 0x400000

// loadRaw maps code as the text of a fresh single-process machine.
// The text VMA is RWX so random STOREs can hit it — exactly the
// self-modification the invalidation protocol must survive.
func loadRaw(t *testing.T, code []byte, mode ExecMode) (*Machine, *Process) {
	exe := &delf.File{
		Type:  delf.TypeExec,
		Name:  "fuzz",
		Entry: fuzzBase,
		Sections: []*delf.Section{{
			Name: delf.SecText, Addr: fuzzBase, Size: uint64(len(code)),
			Perm: delf.PermR | delf.PermW | delf.PermX, Data: code,
		}},
		Symbols: []delf.Symbol{{
			Name: "_start", Value: fuzzBase, Size: uint64(len(code)),
			Kind: delf.SymFunc, Global: true,
		}},
	}
	m := NewMachine()
	m.SetExecMode(mode)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return m, p
}

// checkBlockInvariants asserts no cached block crosses a terminator.
func checkBlockInvariants(t *testing.T, p *Process) {
	t.Helper()
	for _, bi := range p.Mem().CachedBlocks() {
		for i, in := range bi.Insts {
			if i == len(bi.Insts)-1 {
				continue // terminators end blocks; the last slot is theirs
			}
			if in.Op == isa.OpINT3 {
				t.Fatalf("cached block %#x crosses an INT3 at %#x: %v", bi.Entry, bi.Addrs[i], bi.Insts)
			}
			if terminator(in.Op) && in.Op != isa.OpJMP {
				t.Fatalf("cached block %#x crosses terminator %v at %#x", bi.Entry, in.Op, bi.Addrs[i])
			}
		}
	}
}

func FuzzBlockCacheDecode(f *testing.F) {
	f.Add([]byte{0x00}, uint8(0))
	f.Add([]byte{0x90, 0x90, 0xC3}, uint8(1))                  // nop nop ret, raw
	f.Add([]byte{0xCC}, uint8(1))                              // bare int3, raw
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(0))     // generated
	f.Add([]byte{3, 3, 3, 0, 1, 2, 250, 251, 252}, uint8(2))   // generated + int3 splice
	f.Add([]byte{0xFF, 0xFE, 0x00, 0x41, 0x99}, uint8(1))      // junk opcodes
	f.Add([]byte{17, 42, 0, 0, 13, 13, 200, 100, 3}, uint8(3)) // generated + byte smash

	f.Fuzz(func(t *testing.T, seed []byte, shape uint8) {
		if len(seed) == 0 || len(seed) > 512 {
			return
		}
		var code []byte
		switch shape % 4 {
		case 0: // structurally valid program
			code = disasm.GenProgram(seed)
		case 1: // raw byte soup straight into the decoder
			code = append([]byte(nil), seed...)
		case 2: // valid program with an INT3 spliced between halves
			h := len(seed) / 2
			code = disasm.GenProgram(seed[:h])
			code = append(code, 0xCC)
			code = append(code, disasm.GenProgram(seed[h:])...)
		case 3: // valid program with one byte smashed mid-stream
			code = disasm.GenProgram(seed)
			code[int(seed[0])%len(code)] = seed[len(seed)-1]
		}

		const budget = 4096
		ref, refP := loadRaw(t, code, ModeInterpret)
		ref.Run(budget)

		for _, mode := range []ExecMode{ModeTranslate, ModeLockstep} {
			tx, txP := loadRaw(t, code, mode)
			tx.Run(budget)

			if refP.Exited() != txP.Exited() || refP.ExitCode() != txP.ExitCode() || refP.KilledBy() != txP.KilledBy() {
				t.Fatalf("%v: exit diverged: interp %v/%d/%v, engine %v/%d/%v",
					mode, refP.Exited(), refP.ExitCode(), refP.KilledBy(),
					txP.Exited(), txP.ExitCode(), txP.KilledBy())
			}
			if refP.RIP() != txP.RIP() {
				t.Fatalf("%v: rip diverged: %#x vs %#x", mode, refP.RIP(), txP.RIP())
			}
			if refP.Insts() != txP.Insts() {
				t.Fatalf("%v: insts diverged: %d vs %d", mode, refP.Insts(), txP.Insts())
			}
			if ref.Clock() != tx.Clock() {
				t.Fatalf("%v: clock diverged: %d vs %d", mode, ref.Clock(), tx.Clock())
			}
			for r := 0; r < isa.NumRegisters; r++ {
				if refP.Reg(isa.Register(r)) != txP.Reg(isa.Register(r)) {
					t.Fatalf("%v: r%d diverged: %#x vs %#x", mode, r, refP.Reg(isa.Register(r)), txP.Reg(isa.Register(r)))
				}
			}
			if refP.Flags() != txP.Flags() {
				t.Fatalf("%v: flags diverged: %#x vs %#x", mode, refP.Flags(), txP.Flags())
			}
			if n := tx.CacheDivergenceCount(); n != 0 {
				t.Fatalf("%v: %d stale decodes: %v", mode, n, tx.CacheDivergences())
			}
			checkBlockInvariants(t, txP)
		}
	})
}
