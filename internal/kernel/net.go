package kernel

import (
	"errors"
	"fmt"
)

// Virtual TCP. Connections are in-memory duplex byte queues between a
// guest socket and either another guest or a host-side client created
// with Machine.Dial. Each established connection carries a stable ID
// so that checkpoint/restore can re-attach it (the TCP_REPAIR
// analogue the paper relies on for rewriting live servers).

// Network errors.
var (
	ErrPortInUse    = errors.New("kernel: port already bound")
	ErrNotListening = errors.New("kernel: no listener on port")
	ErrConnClosed   = errors.New("kernel: connection closed")
	ErrBadFD        = errors.New("kernel: bad file descriptor")
)

type network struct {
	listeners map[uint16]*listener
	conns     map[uint64]*conn
	nextConn  uint64
}

func newNetwork() *network {
	return &network{
		listeners: map[uint16]*listener{},
		conns:     map[uint64]*conn{},
	}
}

type listener struct {
	port    uint16
	backlog []*conn
	closed  bool
}

// conn is one established connection. Side A is the dialing side
// (host client or guest connect), side B the accepting guest.
type conn struct {
	id      uint64
	port    uint16
	a2b     []byte // written by A, read by B
	b2a     []byte // written by B, read by A
	aClosed bool
	bClosed bool
}

func (n *network) newConn(port uint16) *conn {
	n.nextConn++
	c := &conn{id: n.nextConn, port: port}
	n.conns[c.id] = c
	return c
}

func (n *network) bind(port uint16) (*listener, error) {
	if _, ok := n.listeners[port]; ok {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &listener{port: port}
	n.listeners[port] = l
	return l, nil
}

func (n *network) closeListener(l *listener) {
	if !l.closed {
		l.closed = true
		delete(n.listeners, l.port)
	}
}

// HostConn is the host-side endpoint of a connection into a guest
// server: the "remote attacker / benchmark client" of the paper's
// threat model and experiments.
type HostConn struct {
	m *Machine
	c *conn
}

// Dial connects a host-side client to the guest listener on port.
// The connection is queued until the guest accepts it.
func (m *Machine) Dial(port uint16) (*HostConn, error) {
	l, ok := m.net.listeners[port]
	if !ok || l.closed {
		return nil, fmt.Errorf("%w: %d", ErrNotListening, port)
	}
	c := m.net.newConn(port)
	l.backlog = append(l.backlog, c)
	return &HostConn{m: m, c: c}, nil
}

// Write queues data toward the guest.
func (hc *HostConn) Write(b []byte) (int, error) {
	if hc.c.aClosed {
		return 0, ErrConnClosed
	}
	hc.c.a2b = append(hc.c.a2b, b...)
	return len(b), nil
}

// Read drains whatever the guest has written so far; it never blocks.
// It returns 0, nil when no data is pending and the peer is open, and
// 0, ErrConnClosed once the guest side has closed and the buffer is
// empty.
func (hc *HostConn) Read(b []byte) (int, error) {
	if len(hc.c.b2a) == 0 {
		if hc.c.bClosed {
			return 0, ErrConnClosed
		}
		return 0, nil
	}
	n := copy(b, hc.c.b2a)
	hc.c.b2a = hc.c.b2a[n:]
	return n, nil
}

// ReadAllPeek returns the currently buffered guest output without
// draining it (useful in RunUntil predicates).
func (hc *HostConn) ReadAllPeek() []byte {
	return hc.c.b2a
}

// ReadAll drains all currently buffered guest output.
func (hc *HostConn) ReadAll() []byte {
	out := hc.c.b2a
	hc.c.b2a = nil
	return out
}

// Close shuts the host side.
func (hc *HostConn) Close() {
	hc.c.aClosed = true
}

// Closed reports whether the guest side has closed the connection.
func (hc *HostConn) Closed() bool {
	return hc.c.bClosed && len(hc.c.b2a) == 0
}

// ID returns the connection's stable identifier (used by TCP repair).
func (hc *HostConn) ID() uint64 { return hc.c.id }

// File descriptors ------------------------------------------------------

// FDKind classifies descriptor types for checkpointing.
type FDKind uint8

// Descriptor kinds.
const (
	FDStdio FDKind = iota + 1
	FDListener
	FDConn
)

type fdesc struct {
	kind FDKind
	// stdio
	stdNo int // 0, 1, 2
	// listener
	lst *listener
	// connection; guest is side B when accepted, side A when dialed out
	cn    *conn
	sideA bool
}

// FDInfo describes one open descriptor for checkpoint images.
type FDInfo struct {
	FD     int
	Kind   FDKind
	StdNo  int
	Port   uint16
	ConnID uint64
	SideA  bool
}
