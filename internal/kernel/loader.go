package kernel

import (
	"fmt"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/isa"
)

// Address-space layout constants.
const (
	// LibBase is where the first shared library is mapped; subsequent
	// libraries follow at LibStride intervals.
	LibBase   uint64 = 0x10000000
	LibStride uint64 = 0x01000000
	// StackTop/StackSize place the stack VMA.
	StackTop  uint64 = 0x7ffe_0000_0000
	StackSize uint64 = 64 * PageSize
)

// Module records one mapped binary for tracing and rewriting.
type Module struct {
	Name string
	Lo   uint64
	Hi   uint64
}

// Contains reports whether addr falls inside the module.
func (mod Module) Contains(addr uint64) bool { return addr >= mod.Lo && addr < mod.Hi }

// Modules returns the mapped binaries of p sorted by load order.
func (p *Process) Modules() []Module { return append([]Module(nil), p.modules...) }

// AddModule records a mapped binary (restore/injection path).
func (p *Process) AddModule(mod Module) { p.modules = append(p.modules, mod) }

// ModuleAt returns the module containing addr.
func (p *Process) ModuleAt(addr uint64) (Module, bool) {
	for _, mod := range p.modules {
		if mod.Contains(addr) {
			return mod, true
		}
	}
	return Module{}, false
}

// Load maps an executable and its shared libraries into a fresh
// process, applies dynamic relocations (GOT fill), sets up the stack,
// and leaves the process runnable at the entry point.
func (m *Machine) Load(exe *delf.File, libs ...*delf.File) (*Process, error) {
	if exe.Type != delf.TypeExec {
		return nil, fmt.Errorf("kernel: %s is not an executable", exe.Name)
	}
	// Persist the binaries on "disk" so restores can re-materialize
	// file-backed pages.
	m.WriteFile(exe.Name, exe.Marshal())
	for _, lib := range libs {
		m.WriteFile(lib.Name, lib.Marshal())
	}

	p := m.NewRawProcess(exe.Name, 0)

	if err := mapImage(p, exe, 0); err != nil {
		m.Remove(p.pid)
		return nil, err
	}

	// Map libraries and build the global export table.
	exports := map[string]uint64{}
	libBases := map[string]uint64{}
	for i, lib := range libs {
		base := LibBase + uint64(i)*LibStride
		if err := mapImage(p, lib, base); err != nil {
			m.Remove(p.pid)
			return nil, err
		}
		libBases[lib.Name] = base
		for _, sym := range lib.Symbols {
			if sym.Global {
				if _, dup := exports[sym.Name]; !dup {
					exports[sym.Name] = base + sym.Value
				}
			}
		}
	}
	resolve := func(name string) (uint64, bool) {
		a, ok := exports[name]
		return a, ok
	}

	// Dynamic relocations: each library against its own base, then
	// the executable's GOT against the library exports.
	for i, lib := range libs {
		base := LibBase + uint64(i)*LibStride
		patches, err := link.DynamicPatches(lib, base, resolve)
		if err != nil {
			m.Remove(p.pid)
			return nil, err
		}
		if err := applyPatches(p, patches); err != nil {
			m.Remove(p.pid)
			return nil, err
		}
	}
	patches, err := link.DynamicPatches(exe, 0, resolve)
	if err != nil {
		m.Remove(p.pid)
		return nil, err
	}
	if err := applyPatches(p, patches); err != nil {
		m.Remove(p.pid)
		return nil, err
	}

	// Stack.
	if err := p.mem.Map(VMA{
		Start: StackTop - StackSize, End: StackTop,
		Perm: delf.PermR | delf.PermW, Name: "[stack]", Anon: true,
	}); err != nil {
		m.Remove(p.pid)
		return nil, err
	}
	p.regs[isa.SP] = StackTop - 16
	p.SetRIP(exe.Entry)
	return p, nil
}

// mapImage maps every section of file at base into p's address space
// and copies the initial contents. Writable sections become anonymous
// VMAs (private dirty memory, dumped by vanilla CRIU); read-only and
// executable ones stay file-backed (dumped only with DynaCut's
// dump-executable-pages option).
func mapImage(p *Process, file *delf.File, base uint64) error {
	lo, hi := file.ImageSpan()
	if hi == lo {
		return fmt.Errorf("kernel: %s has no sections", file.Name)
	}
	for _, sec := range file.Sections {
		start := base + sec.Addr
		end := start + (sec.Size+PageSize-1)/PageSize*PageSize
		v := VMA{
			Start: start, End: end, Perm: sec.Perm,
			Name:        file.Name + ":" + sec.Name,
			Backing:     file.Name,
			BackSection: sec.Name,
			Anon:        sec.Perm&delf.PermW != 0,
		}
		if err := p.mem.Map(v); err != nil {
			return fmt.Errorf("map %s: %w", v.Name, err)
		}
		if len(sec.Data) > 0 {
			if err := p.mem.Write(start, sec.Data); err != nil {
				return fmt.Errorf("populate %s: %w", v.Name, err)
			}
		}
	}
	p.AddModule(Module{Name: file.Name, Lo: base + lo, Hi: base + hi})
	return nil
}

func applyPatches(p *Process, patches []link.Patch) error {
	for _, pt := range patches {
		if err := p.mem.Write(pt.Addr, pt.Bytes); err != nil {
			return fmt.Errorf("reloc patch at %#x: %w", pt.Addr, err)
		}
	}
	return nil
}
