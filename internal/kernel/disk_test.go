package kernel

import (
	"bytes"
	"errors"
	"testing"
)

func TestDiskReadWrite(t *testing.T) {
	m := NewMachine()
	if _, err := m.ReadFile("missing"); !errors.Is(err, ErrNoFile) {
		t.Errorf("ReadFile(missing) err = %v", err)
	}
	m.WriteFile("bin", []byte{1, 2, 3})
	got, err := m.ReadFile("bin")
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("ReadFile = %v, %v", got, err)
	}
	// The stored copy is isolated from later mutation of the input.
	src := []byte{9, 9}
	m.WriteFile("iso", src)
	src[0] = 0
	got, _ = m.ReadFile("iso")
	if got[0] != 9 {
		t.Error("WriteFile aliased the caller's slice")
	}
}

func TestProcessLookupErrors(t *testing.T) {
	m := NewMachine()
	if _, err := m.Process(42); !errors.Is(err, ErrNoProcess) {
		t.Errorf("Process(42) err = %v", err)
	}
	if err := m.Kill(42); !errors.Is(err, ErrNoProcess) {
		t.Errorf("Kill(42) err = %v", err)
	}
	if got := m.Children(42); len(got) != 0 {
		t.Errorf("Children = %v", got)
	}
}

func TestModuleAt(t *testing.T) {
	p := newProcess(1, 0, "x")
	p.AddModule(Module{Name: "a", Lo: 0x1000, Hi: 0x2000})
	p.AddModule(Module{Name: "b", Lo: 0x3000, Hi: 0x4000})
	if mod, ok := p.ModuleAt(0x1800); !ok || mod.Name != "a" {
		t.Errorf("ModuleAt(a) = %v %v", mod, ok)
	}
	if _, ok := p.ModuleAt(0x2800); ok {
		t.Error("ModuleAt(hole) hit")
	}
	mods := p.Modules()
	if len(mods) != 2 {
		t.Errorf("Modules = %v", mods)
	}
	// Returned slice is a copy.
	mods[0].Name = "mutated"
	if got, _ := p.ModuleAt(0x1000); got.Name != "a" {
		t.Error("Modules exposed internal state")
	}
}

func TestSyscallFilterAccessors(t *testing.T) {
	p := newProcess(1, 0, "x")
	if p.SyscallFilter() != nil {
		t.Error("fresh process has a filter")
	}
	p.SetSyscallFilter([]uint64{5, 1, 3})
	got := p.SyscallFilter()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("filter = %v (want sorted)", got)
	}
	p.SetSyscallFilter(nil)
	if p.SyscallFilter() != nil {
		t.Error("filter not cleared")
	}
	// Empty filter is distinct from none.
	p.SetSyscallFilter([]uint64{})
	if p.SyscallFilter() == nil {
		t.Error("deny-all filter reported as none")
	}
}
