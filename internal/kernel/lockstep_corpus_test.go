package kernel

// The differential-execution corpus: every guest family the repo
// ships (webserv in both lighttpd and nginx-worker shapes, kvstore,
// and the SPEC-profile benchmarks) booted from instruction zero under
// the lockstep harness, with seeded random request streams driven
// identically into both machines. Zero divergence across the corpus
// is the PR's acceptance gate for the translating engine.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/kvstore"
	"github.com/dynacut/dynacut/internal/apps/specgen"
	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/delf"
)

// newLockstepGuest loads exe+libs into a fresh machine and wraps it
// in a lockstep pair, so even the first boot instruction executes
// under both engines.
func newLockstepGuest(t *testing.T, exe *delf.File, libs ...*delf.File) *Lockstep {
	t.Helper()
	m := NewMachine()
	if _, err := m.Load(exe, libs...); err != nil {
		t.Fatalf("load: %v", err)
	}
	return NewLockstep(m, ModeLockstep)
}

// assertConverged fails the test on any recorded divergence.
func assertConverged(t *testing.T, l *Lockstep) {
	t.Helper()
	if divs := l.Divergences(); len(divs) != 0 {
		for _, d := range divs {
			t.Errorf("%s", d)
		}
		t.Fatalf("%d divergence(s) between interpreter and block-cache engine", len(divs))
	}
}

// runRounds advances both machines up to n rounds, stopping early
// when both go idle. Fails fast on divergence so the report points at
// the first bad round, not a cascade.
func runRounds(t *testing.T, l *Lockstep, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		refN, txN := l.RunRound()
		if len(l.Divergences()) != 0 {
			assertConverged(t, l)
		}
		if refN == 0 && txN == 0 {
			return
		}
	}
}

// lockstepRequest drives one request into both machines and asserts
// the responses are byte-identical.
func lockstepRequest(t *testing.T, l *Lockstep, port uint16, req string) {
	t.Helper()
	var conns []*HostConn
	l.Do(func(m *Machine) {
		c, err := m.Dial(port)
		if err != nil {
			t.Fatalf("dial %d: %v", port, err)
		}
		if _, err := c.Write([]byte(req)); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	})
	// Both machines idle at the same round by construction (any
	// difference in progress is itself a reported divergence).
	for i := 0; i < 4000; i++ {
		l.RunRound()
		if len(conns[0].ReadAllPeek()) > 0 && len(conns[1].ReadAllPeek()) > 0 {
			break
		}
	}
	runRounds(t, l, 50) // let the connection drain/close on both
	ra, rb := conns[0].ReadAll(), conns[1].ReadAll()
	if string(ra) != string(rb) {
		t.Fatalf("response to %q diverged: interpreter %q, engine %q", req, ra, rb)
	}
	l.Do(func(*Machine) {}) // keep Do shape symmetric for readability
	conns[0].Close()
	conns[1].Close()
}

// bootToListener runs rounds until the guest's listener is up on both
// machines.
func bootToListener(t *testing.T, l *Lockstep, port uint16) {
	t.Helper()
	for i := 0; i < 20000; i++ {
		l.RunRound()
		if len(l.Divergences()) != 0 {
			assertConverged(t, l)
		}
		_, errA := l.Ref.Dial(port)
		_, errB := l.Tx.Dial(port)
		if errA == nil && errB == nil {
			// The probe dials above queued one embryo connection on
			// each machine's backlog — symmetric on both, and the
			// guests will accept-and-close them identically.
			return
		}
		if (errA == nil) != (errB == nil) {
			t.Fatalf("listener up on one machine only: ref=%v tx=%v", errA, errB)
		}
	}
	t.Fatal("listener never came up")
}

// webservRequests builds a seeded random request stream mixing every
// dispatchable method with junk.
func webservRequests(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			out = append(out, fmt.Sprintf("%s /\n", webserv.Methods[r.Intn(len(webserv.Methods))]))
		case 1:
			out = append(out, fmt.Sprintf("PUT /f%d data%d\n", r.Intn(4), r.Intn(100)))
		case 2:
			out = append(out, fmt.Sprintf("GET /f%d\n", r.Intn(4)))
		case 3:
			out = append(out, "BREW /\n") // unknown method: 400 path
		default:
			out = append(out, fmt.Sprintf("DELETE /f%d\n", r.Intn(4)))
		}
	}
	return out
}

// kvstoreRequests builds a seeded random command stream.
func kvstoreRequests(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", r.Intn(5))
		switch r.Intn(4) {
		case 0:
			out = append(out, fmt.Sprintf("SET %s v%d\n", k, r.Intn(100)))
		case 1:
			out = append(out, fmt.Sprintf("GET %s\n", k))
		case 2:
			out = append(out, "PING\n")
		default:
			out = append(out, fmt.Sprintf("DEL %s\n", k))
		}
	}
	return out
}

func TestLockstepCorpusWebserv(t *testing.T) {
	for _, cfg := range []webserv.Config{
		{Name: "lighttpd", Port: 8080},
		{Name: "nginx", Port: 8081, Workers: 2},
	} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			app, err := webserv.Build(cfg)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				l := newLockstepGuest(t, app.Exe, app.Libc)
				bootToListener(t, l, cfg.Port)
				for _, req := range webservRequests(seed, 6) {
					lockstepRequest(t, l, cfg.Port, req)
				}
				assertConverged(t, l)
			}
		})
	}
}

func TestLockstepCorpusKvstore(t *testing.T) {
	app, err := kvstore.Build(kvstore.Config{Name: "kvstore", Port: 6379})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		l := newLockstepGuest(t, app.Exe, app.Libc)
		bootToListener(t, l, 6379)
		for _, req := range kvstoreRequests(seed, 8) {
			lockstepRequest(t, l, 6379, req)
		}
		assertConverged(t, l)
	}
}

func TestLockstepCorpusSpec(t *testing.T) {
	// The self-driving figure workloads: boot to completion under both
	// engines. Two profiles keep the corpus representative (short
	// functions + hot loops vs a deep call graph) without blowing up
	// test time.
	for _, name := range []string{"605.mcf_s", "631.deepsjeng_s"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prof, ok := specgen.ProfileByName(name)
			if !ok {
				t.Fatalf("no profile %s", name)
			}
			app, err := specgen.Build(prof)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			l := newLockstepGuest(t, app.Exe, app.Libc)
			runRounds(t, l, 200000)
			assertConverged(t, l)
			pr := l.Ref.Processes()
			pt := l.Tx.Processes()
			if len(pr) != 0 || len(pt) != 0 {
				t.Fatalf("guest did not finish: %d/%d live processes", len(pr), len(pt))
			}
		})
	}
}
