package kernel

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/isa"
)

// buildExe assembles and links a standalone test program.
func buildExe(t *testing.T, name, src string, libs ...*delf.File) *delf.File {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	exe, err := link.Executable(name, []*asm.Object{obj}, libs...)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}

func loadAndRun(t *testing.T, src string, maxSteps uint64) *Process {
	t.Helper()
	m := NewMachine()
	exe := buildExe(t, "test", src)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m.Run(maxSteps)
	return p
}

func TestHelloExit(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	lea r2, msg
	mov r0, 2       ; write
	mov r1, 1       ; stdout
	mov r3, 6
	syscall
	mov r0, 1       ; exit
	mov r1, 42
	syscall
.rodata
msg: .ascii "hello\n"
`, 1000)
	if !p.Exited() || p.ExitCode() != 42 {
		t.Fatalf("exit = %v/%d", p.Exited(), p.ExitCode())
	}
	if string(p.Stdout()) != "hello\n" {
		t.Fatalf("stdout = %q", p.Stdout())
	}
}

func TestArithmeticAndFlags(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 10
	mov r2, 3
	add r1, r2      ; 13
	sub r1, 1       ; 12
	mul r1, r2      ; 36
	div r1, r2      ; 12
	shl r1, 2       ; 48
	shr r1, 1       ; 24
	xor r1, 0xf     ; 24^15 = 23
	and r1, 0x1f    ; 23
	or  r1, 0x40    ; 87
	cmp r1, 87
	jne bad
	cmp r1, 100
	jge bad
	cmp r1, 0
	jle bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0", p.ExitCode())
	}
}

func TestSignedComparisons(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, -5
	cmp r1, 3
	jge bad         ; -5 < 3 signed
	mov r2, -1
	cmp r2, -10
	jl bad          ; -1 > -10
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

func TestCallRetStack(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 5
	call double
	call double
	cmp r1, 20
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
double:
	push r2
	mov r2, 2
	mul r1, r2
	pop r2
	ret
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r9, =setter
	call r9
	cmp r4, 77
	jne bad
	mov r9, =fin
	jmp r9
bad:
	mov r0, 1
	mov r1, 1
	syscall
fin:
	mov r0, 1
	mov r1, 0
	syscall
setter:
	mov r4, 77
	ret
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

func TestDataSections(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r8, =counter
	load r1, [r8]
	add r1, 1
	store [r8], r1
	load r2, [r8]
	cmp r2, 101
	jne bad
	mov r9, =fnptr
	load r9, [r9]
	call r9         ; call through .quad-stored pointer
	cmp r5, 9
	jne bad
	mov r6, =buf    ; bss is zeroed
	load r7, [r6+8]
	cmp r7, 0
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
poke:
	mov r5, 9
	ret
.data
counter: .quad 100
fnptr: .quad poke
.bss
buf: .space 64
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d, stdout=%q", p.ExitCode(), p.Stdout())
	}
}

func TestDivByZeroSIGFPE(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 1
	mov r2, 0
	div r1, r2
	mov r0, 1
	mov r1, 0
	syscall
`, 1000)
	if p.KilledBy() != SIGFPE {
		t.Fatalf("killed by %v, want SIGFPE", p.KilledBy())
	}
}

func TestWriteToRodataFaults(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, =msg
	mov r2, 7
	store [r1], r2
	mov r0, 1
	mov r1, 0
	syscall
.rodata
msg: .quad 1
`, 1000)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV", p.KilledBy())
	}
}

func TestJumpToUnmappedFaults(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 0x99000000
	jmp r1
`, 1000)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV", p.KilledBy())
	}
}

func TestExecuteDataFaults(t *testing.T) {
	// NX: jumping into .data (mapped RW, not X) must fault even
	// though the bytes there decode as valid instructions.
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, =blob
	jmp r1
.data
blob: .byte 0x90, 0x90, 0xC3
`, 1000)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV (NX)", p.KilledBy())
	}
}

func TestINT3DefaultKills(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	int3
	mov r0, 1
	mov r1, 0
	syscall
`, 1000)
	if p.KilledBy() != SIGTRAP {
		t.Fatalf("killed by %v, want SIGTRAP", p.KilledBy())
	}
	if p.ExitCode() != 128+int(SIGTRAP) {
		t.Fatalf("exit code = %d", p.ExitCode())
	}
}

// TestSIGTRAPHandlerRedirect exercises the paper's central mechanism:
// an INT3 placed on a blocked feature raises SIGTRAP; the registered
// handler rewrites the saved RIP in the signal frame so that
// sigreturn resumes at the error path instead of terminating.
func TestSIGTRAPHandlerRedirect(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 5            ; SIGTRAP
	mov r2, =handler
	mov r3, =restorer
	mov r0, 11           ; sigaction
	syscall
	int3                 ; blocked "feature"
	; skipped entirely: the handler redirects past it
	mov r0, 1
	mov r1, 99           ; must not run
	syscall
target:
	mov r0, 1
	mov r1, 7
	syscall

handler:
	; r3 = frame pointer; rewrite saved RIP to point at target
	mov r5, =target
	store [r3], r5
	ret                  ; returns to restorer

restorer:
	mov r1, sp           ; frame pointer is at SP after the ret pop
	mov r0, 12           ; sigreturn
	syscall
`, 10000)
	if !p.Exited() {
		t.Fatal("did not exit")
	}
	if p.ExitCode() != 7 {
		t.Fatalf("exit = %d, want 7 (redirect target)", p.ExitCode())
	}
	if p.KilledBy() != 0 {
		t.Fatalf("killed by %v", p.KilledBy())
	}
}

// TestSIGTRAPHandlerPreservesRegisters: the frame save/restore must
// round-trip all registers and flags for untouched state.
func TestSIGTRAPHandlerPreservesRegisters(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 5
	mov r2, =handler
	mov r3, =restorer
	mov r0, 11
	syscall
	mov r9, 1234
	mov r10, 5678
	cmp r9, r10          ; sets L flag
	int3
	; resumes at skip (handler bumps RIP by 1, the INT3 size)
skip:
	jge bad              ; L must still be set
	cmp r9, 1234
	jne bad
	cmp r10, 5678
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
handler:
	load r5, [r3]        ; saved RIP (the int3 itself)
	add r5, 1            ; skip the 1-byte INT3
	store [r3], r5
	mov r9, 0            ; clobber; must be restored by sigreturn
	mov r10, 0
	ret
restorer:
	mov r1, sp
	mov r0, 12
	syscall
`, 10000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0", p.ExitCode())
	}
}

func TestForkParentChild(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r0, 9            ; fork
	syscall
	cmp r0, 0
	je child
	; parent: wait for child, exit with (wait>>8 == childpid)
wait_loop:
	mov r0, 16           ; wait
	syscall
	cmp r0, -1
	je wait_loop
	mov r2, r0
	and r2, 0xff         ; child exit code
	mov r0, 1
	mov r1, r2
	syscall
child:
	mov r0, 1
	mov r1, 33
	syscall
`, 100000)
	if !p.Exited() || p.ExitCode() != 33 {
		t.Fatalf("parent exit = %v/%d, want 33", p.Exited(), p.ExitCode())
	}
}

func TestForkMemoryIsCopied(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "forkmem", `
.text
.global _start
_start:
	mov r8, =shared
	mov r1, 1
	store [r8], r1
	mov r0, 9            ; fork
	syscall
	cmp r0, 0
	je child
	; parent: spin until child exits, then read shared (must still be 1)
ploop:
	mov r0, 16
	syscall
	cmp r0, -1
	je ploop
	load r1, [r8]
	mov r0, 1
	syscall              ; exit with shared value
child:
	mov r1, 2
	store [r8], r1       ; writes only the child's copy
	mov r0, 1
	mov r1, 0
	syscall
.data
shared: .quad 0
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100000)
	if !p.Exited() || p.ExitCode() != 1 {
		t.Fatalf("exit = %v/%d, want 1 (COW semantics)", p.Exited(), p.ExitCode())
	}
}

func TestPLTCallIntoLibrary(t *testing.T) {
	libObj, err := asm.Assemble(`
.text
.global add_ten
add_ten:
	add r1, 10
	ret
.global get_magic
get_magic:
	lea r9, magic        ; PIC data access
	load r0, [r9]
	ret
.rodata
magic: .quad 424242
`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := link.Library("libten.so", []*asm.Object{libObj})
	if err != nil {
		t.Fatal(err)
	}
	exe := buildExe(t, "plttest", `
.text
.global _start
_start:
	mov r1, 5
	call add_ten@plt
	cmp r1, 15
	jne bad
	call get_magic@plt
	cmp r0, 424242
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, lib)
	m := NewMachine()
	p, err := m.Load(exe, lib)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
	// The library is recorded as a module at LibBase.
	mod, ok := p.ModuleAt(LibBase)
	if !ok || mod.Name != "libten.so" {
		t.Errorf("ModuleAt(LibBase) = %v, %v", mod, ok)
	}
}

const echoServerSrc = `
.text
.global _start
_start:
	mov r0, 4            ; socket
	syscall
	mov r8, r0           ; listener fd
	mov r0, 5            ; bind
	mov r1, r8
	mov r2, 8080
	syscall
	mov r0, 6            ; listen
	mov r1, r8
	syscall
loop:
	mov r0, 7            ; accept
	mov r1, r8
	syscall
	mov r9, r0           ; conn fd
	mov r0, 3            ; read
	mov r1, r9
	mov r2, =buf
	mov r3, 64
	syscall
	mov r4, r0           ; n
	mov r0, 2            ; write it back
	mov r1, r9
	mov r2, =buf
	mov r3, r4
	syscall
	mov r0, 8            ; close conn
	mov r1, r9
	syscall
	jmp loop
.bss
buf: .space 64
`

func TestEchoServerWithHostClient(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "echo", echoServerSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	// Let the server boot and block in accept.
	m.Run(10000)
	if p.Exited() {
		t.Fatalf("server died: code=%d killed=%v", p.ExitCode(), p.KilledBy())
	}
	conn, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	ok := m.RunUntil(func() bool { return len(conn.c.b2a) >= 4 }, 100000)
	if !ok {
		t.Fatal("no echo response")
	}
	if got := string(conn.ReadAll()); got != "ping" {
		t.Fatalf("echo = %q", got)
	}
	// Second round-trip on a fresh connection.
	conn2, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write([]byte("again")); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(func() bool { return len(conn2.c.b2a) >= 5 }, 100000)
	if got := string(conn2.ReadAll()); got != "again" {
		t.Fatalf("echo2 = %q", got)
	}
}

func TestDialWithoutListener(t *testing.T) {
	m := NewMachine()
	if _, err := m.Dial(9999); err == nil {
		t.Fatal("Dial with no listener succeeded")
	}
}

func TestDoubleBindFails(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "bind2", `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 7777
	syscall
	mov r0, 4
	syscall
	mov r9, r0
	mov r0, 5
	mov r1, r9
	mov r2, 7777
	syscall              ; second bind must fail (-1)
	cmp r0, -1
	jne bad
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

func TestRunIdlesWhenAllBlocked(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "blocker", `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 6000
	syscall
	mov r0, 7            ; accept blocks forever
	mov r1, r8
	syscall
	mov r0, 1
	syscall
`)
	if _, err := m.Load(exe); err != nil {
		t.Fatal(err)
	}
	n := m.Run(1_000_000)
	if n >= 1_000_000 {
		t.Fatalf("Run spun %d steps on a blocked process", n)
	}
	before := m.Clock()
	if m.Run(1000) != 0 {
		t.Error("blocked machine made progress")
	}
	if m.Clock() != before {
		t.Error("clock advanced while blocked")
	}
}

func TestClockAndGetpidSyscalls(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r0, 13           ; clock
	syscall
	mov r9, r0
	mov r0, 10           ; getpid
	syscall
	cmp r0, 1
	jne bad
	mov r0, 13
	syscall
	cmp r0, r9
	jle bad              ; clock must advance
	mov r0, 1
	mov r1, 0
	syscall
bad:
	mov r0, 1
	mov r1, 1
	syscall
`, 1000)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

func TestNudgeSyscall(t *testing.T) {
	m := NewMachine()
	var nudged []uint64
	m.SetNudgeFunc(func(pid int, arg uint64) {
		nudged = append(nudged, arg)
	})
	exe := buildExe(t, "nudger", `
.text
.global _start
_start:
	mov r0, 15
	mov r1, 1
	syscall
	mov r0, 15
	mov r1, 2
	syscall
	mov r0, 1
	mov r1, 0
	syscall
`)
	if _, err := m.Load(exe); err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	if len(nudged) != 2 || nudged[0] != 1 || nudged[1] != 2 {
		t.Fatalf("nudges = %v", nudged)
	}
}

type blockRecorder struct {
	blocks map[uint64]uint64 // start -> size
	order  []uint64
}

func (r *blockRecorder) OnBlock(pid int, start, size uint64) {
	if r.blocks == nil {
		r.blocks = map[uint64]uint64{}
	}
	if _, seen := r.blocks[start]; !seen {
		r.order = append(r.order, start)
	}
	r.blocks[start] = size
}

func TestTracerSeesBasicBlocks(t *testing.T) {
	m := NewMachine()
	rec := &blockRecorder{}
	m.SetTracer(rec)
	exe := buildExe(t, "traced", `
.text
.global _start
_start:
	mov r1, 0          ; block A: _start..jmp
	jmp middle
dead:
	mov r1, 99         ; never executed
	ret
middle:
	add r1, 1          ; block B
	cmp r1, 3
	jl middle
	mov r0, 1          ; block C
	mov r1, 0
	syscall
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000)
	if !p.Exited() {
		t.Fatal("did not exit")
	}
	start, _ := exe.Symbol("_start")
	middle, _ := exe.Symbol("middle")
	dead, _ := exe.Symbol("dead")
	if _, ok := rec.blocks[start.Value]; !ok {
		t.Errorf("entry block not traced; got %v", rec.order)
	}
	if _, ok := rec.blocks[middle.Value]; !ok {
		t.Errorf("loop block not traced; got %v", rec.order)
	}
	if _, ok := rec.blocks[dead.Value]; ok {
		t.Error("dead block traced")
	}
	// Block A spans _start (10 bytes mov + 5 jmp).
	if sz := rec.blocks[start.Value]; sz != 15 {
		t.Errorf("entry block size = %d, want 15", sz)
	}
}

func TestLoadErrors(t *testing.T) {
	m := NewMachine()
	lib := &delf.File{Type: delf.TypeDyn, Name: "l.so",
		Sections: []*delf.Section{{Name: delf.SecText, Addr: 0, Size: 1,
			Perm: delf.PermR | delf.PermX, Data: []byte{byte(isa.OpRET)}}}}
	if _, err := m.Load(lib); err == nil || !strings.Contains(err.Error(), "not an executable") {
		t.Errorf("Load(lib) err = %v", err)
	}
}

func TestStdoutStderrSeparation(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	lea r2, m1
	mov r0, 2
	mov r1, 1
	mov r3, 3
	syscall
	lea r2, m2
	mov r0, 2
	mov r1, 2
	mov r3, 3
	syscall
	mov r0, 1
	mov r1, 0
	syscall
.rodata
m1: .ascii "out"
m2: .ascii "err"
`, 1000)
	if string(p.Stdout()) != "out" || string(p.Stderr()) != "err" {
		t.Fatalf("stdout=%q stderr=%q", p.Stdout(), p.Stderr())
	}
}
