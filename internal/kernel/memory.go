package kernel

import (
	"errors"
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/delf"
)

// PageSize is the granularity of mappings; UnmapPages-style policies
// operate on it.
const PageSize = 4096

// Memory errors. Guest-visible faults are converted to signals by the
// interpreter; these errors surface to Go callers (debugger view,
// checkpointing, rewriting).
var (
	ErrUnmapped   = errors.New("kernel: address not mapped")
	ErrPerm       = errors.New("kernel: permission denied")
	ErrVMAOverlap = errors.New("kernel: VMA overlap")
	ErrNoVMA      = errors.New("kernel: no VMA at address")
)

// VMA is one virtual memory area. Start/End are page aligned.
// File-backed executable VMAs are what DynaCut's patched CRIU must
// dump explicitly (vanilla CRIU dumps only anonymous memory).
type VMA struct {
	Start   uint64
	End     uint64
	Perm    delf.Perm
	Name    string // e.g. "prog:.text", "libc.so:.text", "[stack]"
	Backing string // originating file name; "" for anonymous
	// BackSection is the section within Backing this VMA maps, so a
	// restore without dumped code pages can re-materialize contents
	// from the "on-disk" binary (exactly why vanilla CRIU skips
	// file-backed pages, and why DynaCut must dump them).
	BackSection string
	Anon        bool
}

// Size returns the VMA length in bytes.
func (v VMA) Size() uint64 { return v.End - v.Start }

// Contains reports whether addr falls inside the VMA.
func (v VMA) Contains(addr uint64) bool { return addr >= v.Start && addr < v.End }

func (v VMA) String() string {
	return fmt.Sprintf("%#x-%#x %s %s", v.Start, v.End, v.Perm, v.Name)
}

// Memory is a paged address space with a VMA map, owned by one
// process. The zero value is not usable; use newMemory.
//
// Every page carries a dirty bit, set whenever the page is written
// (or first populated) and cleared by SnapshotDirty/ClearDirty. The
// bitmap is what makes incremental checkpointing possible: a dump
// that holds the previous checkpoint as a parent only needs the
// pages dirtied since.
type Memory struct {
	pages map[uint64][]byte   // page number -> PageSize bytes
	dirty map[uint64]struct{} // pages written since the last snapshot
	vmas  []VMA               // sorted by Start, non-overlapping

	// cow marks pages whose backing slice is shared with another
	// address space (CloneCoW). A shared page is copied privately the
	// first time it is written, so N cloned guests cost one copy of
	// their common pristine pages until they diverge. nil when nothing
	// is shared.
	cow map[uint64]struct{}

	// Block-cache state (bcache.go). bc is the per-address-space
	// basic-block translation cache, created lazily the first time the
	// machine executes this memory in a translating mode; gens is the
	// per-page mutation generation counter the cache validates against
	// (allocated with bc, so pure-interpreter runs pay nothing); and
	// layoutGen counts VMA-layout changes (Map/Unmap/Protect), any of
	// which flushes the whole cache — instruction-fetch side effects
	// depend on the mapping, not just the bytes. None of these fields
	// are cloned: a clone starts with an empty cache and a zeroed
	// generation space, which is trivially consistent.
	bc        *blockCache
	gens      map[uint64]uint64
	layoutGen uint64
}

func newMemory() *Memory {
	return &Memory{pages: map[uint64][]byte{}, dirty: map[uint64]struct{}{}}
}

// Clone deep-copies the address space (fork). The dirty bitmap is
// copied too: the child has never been checkpointed, so a dump of it
// falls back to a full dump anyway, but cheap writes-since-fork info
// must not be lost either way.
func (m *Memory) Clone() *Memory {
	c := &Memory{
		pages: make(map[uint64][]byte, len(m.pages)),
		dirty: make(map[uint64]struct{}, len(m.dirty)),
		vmas:  append([]VMA(nil), m.vmas...),
	}
	for pn, pg := range m.pages {
		c.pages[pn] = append([]byte(nil), pg...)
	}
	for pn := range m.dirty {
		c.dirty[pn] = struct{}{}
	}
	return c
}

// CloneCoW returns a copy-on-write copy of the address space: both
// sides keep referencing the same page slices, and either side copies
// a page privately the first time it writes it. Cloning N guests from
// one booted template this way costs one copy of the pristine pages
// plus only the pages each clone later dirties.
func (m *Memory) CloneCoW() *Memory {
	c := &Memory{
		pages: make(map[uint64][]byte, len(m.pages)),
		dirty: make(map[uint64]struct{}, len(m.dirty)),
		vmas:  append([]VMA(nil), m.vmas...),
		cow:   make(map[uint64]struct{}, len(m.pages)),
	}
	if m.cow == nil {
		m.cow = make(map[uint64]struct{}, len(m.pages))
	}
	for pn, pg := range m.pages {
		c.pages[pn] = pg
		c.cow[pn] = struct{}{}
		m.cow[pn] = struct{}{}
	}
	for pn := range m.dirty {
		c.dirty[pn] = struct{}{}
	}
	return c
}

// breakCoW gives page pn private backing if its slice is shared with a
// clone. Must be called before any in-place mutation of the page.
func (m *Memory) breakCoW(pn uint64) {
	if m.cow == nil {
		return
	}
	if _, shared := m.cow[pn]; !shared {
		return
	}
	m.pages[pn] = append([]byte(nil), m.pages[pn]...)
	delete(m.cow, pn)
}

// SharedPageCount reports how many pages still share backing with a
// clone (diagnostics; the fleet dedup experiments read it).
func (m *Memory) SharedPageCount() int { return len(m.cow) }

// noteWrite records a loud mutation of page pn: the page's generation
// advances and every cached block spanning the page is flushed
// immediately, severing any superblock that chained through it. All
// legitimate text-write channels funnel here — guest stores, live-
// patch INT3 stores, attestation repairs, restore-path SetPage,
// library injection — so a patched page can never execute stale
// cached code, not even later in the same scheduler round.
func (m *Memory) noteWrite(pn uint64) {
	if m.gens != nil {
		m.gens[pn]++
	}
	if m.bc != nil {
		m.bc.invalidatePage(pn)
	}
}

// noteSilentWrite advances pn's generation without flushing the cache:
// the FlipBits channel. A silent bit flip bypasses every loud
// bookkeeping path by design (no dirty bit, no trap), but the
// translation cache would otherwise keep executing the pre-flip
// decode — diverging from the interpreter, which fetches live bytes.
// The generation bump makes the next dispatch of any block on the
// page revalidate and re-translate, keeping flip semantics
// byte-identical across execution modes while staying invisible to
// the dirty bitmap.
func (m *Memory) noteSilentWrite(pn uint64) {
	if m.gens != nil {
		m.gens[pn]++
	}
}

// noteLayoutChange records a VMA-table change (Map/Unmap/Protect) and
// flushes the entire block cache. Layout changes can alter fetch
// behavior without touching any page contents — revoking execute
// permission, unmapping a page a block's over-fetch window touched,
// mapping fresh pages where a fetch previously stopped — so per-page
// generations are not enough; every cached block is invalidated.
func (m *Memory) noteLayoutChange() {
	m.layoutGen++
	if m.bc != nil {
		m.bc.flushAll()
	}
}

// TextGen returns the current mutation generation of page pn (zero
// until the block cache exists and the page is first mutated). Tests
// and the attestation layer use it to prove that a silent flip or a
// repair advanced the counter the cache validates against.
func (m *Memory) TextGen(pn uint64) uint64 { return m.gens[pn] }

// VMAs returns a copy of the VMA table.
func (m *Memory) VMAs() []VMA {
	return append([]VMA(nil), m.vmas...)
}

// VMAAt returns the VMA containing addr.
func (m *Memory) VMAAt(addr uint64) (VMA, bool) {
	i := sort.Search(len(m.vmas), func(i int) bool { return m.vmas[i].End > addr })
	if i < len(m.vmas) && m.vmas[i].Contains(addr) {
		return m.vmas[i], true
	}
	return VMA{}, false
}

func pageAligned(v uint64) bool { return v%PageSize == 0 }

// Map installs a new VMA. Start and End must be page aligned and the
// range must not overlap an existing VMA.
func (m *Memory) Map(v VMA) error {
	if !pageAligned(v.Start) || !pageAligned(v.End) || v.End <= v.Start {
		return fmt.Errorf("kernel: bad VMA bounds %#x-%#x", v.Start, v.End)
	}
	for _, old := range m.vmas {
		if v.Start < old.End && old.Start < v.End {
			return fmt.Errorf("%w: %s vs %s", ErrVMAOverlap, v, old)
		}
	}
	m.vmas = append(m.vmas, v)
	sort.Slice(m.vmas, func(i, j int) bool { return m.vmas[i].Start < m.vmas[j].Start })
	m.noteLayoutChange()
	return nil
}

// Unmap removes the page-aligned range [start, end) from the VMA map
// and drops its pages. Partial overlaps split the surviving VMA.
func (m *Memory) Unmap(start, end uint64) error {
	if !pageAligned(start) || !pageAligned(end) || end <= start {
		return fmt.Errorf("kernel: bad unmap bounds %#x-%#x", start, end)
	}
	var out []VMA
	touched := false
	for _, v := range m.vmas {
		if end <= v.Start || v.End <= start {
			out = append(out, v)
			continue
		}
		touched = true
		if v.Start < start {
			left := v
			left.End = start
			out = append(out, left)
		}
		if end < v.End {
			right := v
			right.Start = end
			out = append(out, right)
		}
	}
	if !touched {
		return fmt.Errorf("%w: %#x-%#x", ErrNoVMA, start, end)
	}
	m.vmas = out
	for pn := start / PageSize; pn < end/PageSize; pn++ {
		delete(m.pages, pn)
		delete(m.dirty, pn)
		delete(m.cow, pn)
		m.noteSilentWrite(pn) // generation keeps advancing across unmap/remap
	}
	m.noteLayoutChange()
	return nil
}

// Protect changes the permissions of the VMA(s) fully covering
// [start, end), splitting as needed.
func (m *Memory) Protect(start, end uint64, perm delf.Perm) error {
	if !pageAligned(start) || !pageAligned(end) || end <= start {
		return fmt.Errorf("kernel: bad protect bounds %#x-%#x", start, end)
	}
	var out []VMA
	covered := uint64(0)
	for _, v := range m.vmas {
		if end <= v.Start || v.End <= start {
			out = append(out, v)
			continue
		}
		lo, hi := max64(v.Start, start), min64(v.End, end)
		covered += hi - lo
		if v.Start < lo {
			left := v
			left.End = lo
			out = append(out, left)
		}
		mid := v
		mid.Start, mid.End, mid.Perm = lo, hi, perm
		out = append(out, mid)
		if hi < v.End {
			right := v
			right.Start = hi
			out = append(out, right)
		}
	}
	if covered != end-start {
		return fmt.Errorf("%w: protect %#x-%#x not fully mapped", ErrNoVMA, start, end)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	m.vmas = out
	m.noteLayoutChange()
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// page returns the backing page, allocating it zero-filled if the
// address is mapped. Freshly populated pages are marked dirty: they
// did not exist at the previous checkpoint, so an incremental dump
// must include them.
func (m *Memory) page(addr uint64) ([]byte, bool) {
	if _, ok := m.VMAAt(addr); !ok {
		return nil, false
	}
	pn := addr / PageSize
	pg, ok := m.pages[pn]
	if !ok {
		pg = make([]byte, PageSize)
		m.pages[pn] = pg
		m.dirty[pn] = struct{}{}
	}
	return pg, true
}

// Read copies n bytes at addr without permission checks (the
// kernel/debugger view used by checkpointing and tracing).
func (m *Memory) Read(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := m.read(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (m *Memory) read(addr uint64, out []byte) error {
	for done := 0; done < len(out); {
		pg, ok := m.page(addr + uint64(done))
		if !ok {
			return fmt.Errorf("%w: %#x", ErrUnmapped, addr+uint64(done))
		}
		off := (addr + uint64(done)) % PageSize
		done += copy(out[done:], pg[off:])
	}
	return nil
}

// Write stores b at addr without permission checks.
func (m *Memory) Write(addr uint64, b []byte) error {
	for done := 0; done < len(b); {
		a := addr + uint64(done)
		if _, ok := m.page(a); !ok {
			return fmt.Errorf("%w: %#x", ErrUnmapped, a)
		}
		pn := a / PageSize
		m.breakCoW(pn)
		pg := m.pages[pn]
		m.dirty[pn] = struct{}{}
		m.noteWrite(pn)
		off := a % PageSize
		done += copy(pg[off:], b[done:])
	}
	return nil
}

// checkPerm verifies that every byte of [addr, addr+n) is mapped with
// the wanted permission.
func (m *Memory) checkPerm(addr uint64, n int, want delf.Perm) error {
	end := addr + uint64(n)
	for a := addr; a < end; {
		v, ok := m.VMAAt(a)
		if !ok {
			return fmt.Errorf("%w: %#x", ErrUnmapped, a)
		}
		if v.Perm&want != want {
			return fmt.Errorf("%w: %v access at %#x (%s)", ErrPerm, want, a, v)
		}
		a = v.End
	}
	return nil
}

// ReadGuest is a permission-checked read as performed by guest code.
func (m *Memory) ReadGuest(addr uint64, n int) ([]byte, error) {
	if err := m.checkPerm(addr, n, delf.PermR); err != nil {
		return nil, err
	}
	return m.Read(addr, n)
}

// WriteGuest is a permission-checked write as performed by guest code.
func (m *Memory) WriteGuest(addr uint64, b []byte) error {
	if err := m.checkPerm(addr, len(b), delf.PermW); err != nil {
		return err
	}
	return m.Write(addr, b)
}

// FetchGuest reads up to n instruction bytes at addr, requiring
// execute permission on the first byte (like a CPU fetch). Fewer
// bytes may be returned at a mapping boundary.
func (m *Memory) FetchGuest(addr uint64, n int) ([]byte, error) {
	if err := m.checkPerm(addr, 1, delf.PermX); err != nil {
		return nil, err
	}
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		pg, ok := m.page(addr + uint64(i))
		if !ok {
			break
		}
		out = append(out, pg[(addr+uint64(i))%PageSize])
	}
	return out, nil
}

// ReadU64 reads a little-endian 64-bit word (guest semantics).
func (m *Memory) ReadU64(addr uint64) (uint64, error) {
	b, err := m.ReadGuest(addr, 8)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

// WriteU64 writes a little-endian 64-bit word (guest semantics).
func (m *Memory) WriteU64(addr uint64, v uint64) error {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.WriteGuest(addr, b)
}

// PopulatedPages returns the sorted page numbers that have backing
// storage allocated — the pagemap for checkpointing.
func (m *Memory) PopulatedPages() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageData returns a copy of the contents of page pn (nil if
// unpopulated). Returning a copy keeps "read" semantics honest: a
// caller mutating the result cannot silently change live guest
// memory. The checkpoint hot path uses PageDataUnsafe instead.
func (m *Memory) PageData(pn uint64) []byte {
	pg, ok := m.pages[pn]
	if !ok {
		return nil
	}
	return append([]byte(nil), pg...)
}

// PageDataUnsafe returns the internal page slice of pn by reference
// (nil if unpopulated). The caller must treat it as read-only; it
// exists so the dump path can serialize guest memory without copying
// every page twice.
func (m *Memory) PageDataUnsafe(pn uint64) []byte {
	return m.pages[pn]
}

// SetPage installs raw page contents (restore path) and marks the
// page dirty.
func (m *Memory) SetPage(pn uint64, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("kernel: page data must be %d bytes, got %d", PageSize, len(data))
	}
	m.pages[pn] = append([]byte(nil), data...)
	m.dirty[pn] = struct{}{}
	delete(m.cow, pn)
	m.noteWrite(pn)
	return nil
}

// DirtyPageCount reports how many pages are currently marked dirty.
func (m *Memory) DirtyPageCount() int { return len(m.dirty) }

// DirtyPages returns the sorted page numbers currently marked dirty
// WITHOUT clearing the bitmap — the observation the lockstep oracle
// diffs after every scheduler round (SnapshotDirty would perturb the
// very state under comparison).
func (m *Memory) DirtyPages() []uint64 {
	out := make([]uint64, 0, len(m.dirty))
	for pn := range m.dirty {
		out = append(out, pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SnapshotDirty returns the sorted page numbers written since the
// previous snapshot and clears the bitmap: the caller is taking a
// checkpoint that, from now on, describes this memory. Pages that
// were dirtied and then unmapped are not reported (they no longer
// have backing storage).
func (m *Memory) SnapshotDirty() []uint64 {
	out := make([]uint64, 0, len(m.dirty))
	for pn := range m.dirty {
		if _, populated := m.pages[pn]; populated {
			out = append(out, pn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	m.dirty = map[uint64]struct{}{}
	return out
}

// ClearDirty discards the dirty bitmap without reading it — used
// after a restore, when memory is by construction identical to the
// image set it was rebuilt from.
func (m *Memory) ClearDirty() { m.dirty = map[uint64]struct{}{} }
