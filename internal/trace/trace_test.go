package trace

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
)

func sampleModules() []kernel.Module {
	return []kernel.Module{
		{Name: "prog", Lo: 0x400000, Hi: 0x406000},
		{Name: "libc.so", Lo: 0x10000000, Hi: 0x10008000},
	}
}

func TestCollectorDedup(t *testing.T) {
	c := NewCollector("prog")
	c.OnBlock(1, 0x400010, 15)
	c.OnBlock(1, 0x400010, 15)
	c.OnBlock(1, 0x400030, 5)
	c.OnBlock(2, 0x10000100, 3) // another process, library block
	if c.Unique() != 3 {
		t.Fatalf("Unique = %d, want 3", c.Unique())
	}
	if c.Hits() != 4 {
		t.Fatalf("Hits = %d, want 4", c.Hits())
	}
	l := c.Snapshot(sampleModules(), "full")
	if len(l.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(l.Blocks))
	}
	// Sorted by address.
	for i := 1; i < len(l.Blocks); i++ {
		if l.Blocks[i-1].Addr > l.Blocks[i].Addr {
			t.Fatal("blocks not sorted")
		}
	}
}

func TestNudgeSnapshotAndReset(t *testing.T) {
	c := NewCollector("srv")
	c.OnBlock(1, 0x400000, 10)
	initLog := c.SnapshotAndReset(sampleModules(), "init")
	if len(initLog.Blocks) != 1 || initLog.Phase != "init" {
		t.Fatalf("init log = %+v", initLog)
	}
	if c.Unique() != 0 {
		t.Fatal("collector not reset")
	}
	c.OnBlock(1, 0x400100, 5)
	servingLog := c.Snapshot(sampleModules(), "serving")
	if len(servingLog.Blocks) != 1 || servingLog.Blocks[0].Addr != 0x400100 {
		t.Fatalf("serving log = %+v", servingLog)
	}
}

func TestLogRoundTrip(t *testing.T) {
	c := NewCollector("prog")
	c.OnBlock(1, 0x400010, 15)
	c.OnBlock(1, 0x10000100, 3)
	c.OnBlock(1, 0x99999999, 7) // outside any module
	l := c.Snapshot(sampleModules(), "full")
	text := string(l.Marshal())
	if !strings.Contains(text, "PROGRAM: prog") {
		t.Errorf("missing program header:\n%s", text)
	}
	if !strings.Contains(text, "module[-1]") {
		t.Errorf("orphan block not marked:\n%s", text)
	}
	got, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Program != "prog" || got.Phase != "full" {
		t.Errorf("headers = %q/%q", got.Program, got.Phase)
	}
	if len(got.Blocks) != len(l.Blocks) {
		t.Fatalf("blocks %d != %d", len(got.Blocks), len(l.Blocks))
	}
	for i := range got.Blocks {
		if got.Blocks[i] != l.Blocks[i] {
			t.Errorf("block %d: %+v != %+v", i, got.Blocks[i], l.Blocks[i])
		}
	}
	if len(got.Modules) != 2 || got.Modules[1].Name != "libc.so" {
		t.Errorf("modules = %+v", got.Modules)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"NOT A LOG\n",
		"DRCOV VERSION: 1\nPROGRAM: x\nPHASE: f\nMODULE TABLE: 1\n",                                     // truncated module table
		"DRCOV VERSION: 1\nPROGRAM: x\nPHASE: f\nMODULE TABLE: 0\nBB TABLE: 2 bbs\n",                    // truncated bb table
		"DRCOV VERSION: 1\nPROGRAM: x\nPHASE: f\nMODULE TABLE: 0\nBB TABLE: junk\n",                     // bad count
		"DRCOV VERSION: 1\nPROGRAM: x\nPHASE: f\nMODULE TABLE: 1\nbadrow\nBB TABLE: 0 bbs\n",            // bad module row
		"DRCOV VERSION: 1\nPROGRAM: x\nPHASE: f\nMODULE TABLE: 0\nBB TABLE: 1 bbs\nmodule[7]: 0x0, 5\n", // unknown module id
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d parsed successfully", i)
		}
	}
}

func TestModuleOf(t *testing.T) {
	l := &Log{Modules: []ModuleInfo{{ID: 0, Lo: 100, Hi: 200, Name: "m"}}}
	if m, ok := l.ModuleOf(150); !ok || m.Name != "m" {
		t.Error("ModuleOf inside failed")
	}
	if _, ok := l.ModuleOf(200); ok {
		t.Error("ModuleOf boundary hit")
	}
}
