// Package trace implements drcov-style code-coverage collection for
// guest processes: basic blocks are recorded as <BB addr, BB size>
// tuples against a module table, exactly the artifact DynaCut's
// differential analysis consumes. A "nudge" (the DynamoRIO
// communication mechanism the paper extends) snapshots the coverage
// collected so far — the initialization phase — and clears the cache
// so the remainder of the run yields the serving-phase coverage.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/dynacut/dynacut/internal/kernel"
)

// RawBlock is one executed basic block in absolute addresses.
type RawBlock struct {
	Addr uint64
	Size uint64
}

// ModuleInfo is one module-table row.
type ModuleInfo struct {
	ID   int
	Lo   uint64
	Hi   uint64
	Name string
}

// Log is one coverage log file (the drcov output equivalent).
type Log struct {
	Program string
	Phase   string
	Modules []ModuleInfo
	Blocks  []RawBlock // deduplicated, sorted by address
}

// Package errors.
var ErrBadLog = errors.New("trace: malformed coverage log")

// Collector gathers deduplicated basic blocks from a Machine; it
// implements kernel.Tracer. All traced processes contribute to one
// block set, matching drcov's per-program logs (the paper's trace
// collector merges multi-process coverage the same way).
type Collector struct {
	program string
	blocks  map[RawBlock]struct{}
	hits    uint64
}

// NewCollector creates a collector for the named program.
func NewCollector(program string) *Collector {
	return &Collector{program: program, blocks: map[RawBlock]struct{}{}}
}

var _ kernel.Tracer = (*Collector)(nil)

// OnBlock records one executed basic block.
func (c *Collector) OnBlock(pid int, start, size uint64) {
	c.blocks[RawBlock{Addr: start, Size: size}] = struct{}{}
	c.hits++
}

// Hits returns the total (non-deduplicated) block executions seen.
func (c *Collector) Hits() uint64 { return c.hits }

// Unique returns the number of distinct blocks recorded so far.
func (c *Collector) Unique() int { return len(c.blocks) }

// Reset clears the recorded coverage (the post-nudge cache clear).
func (c *Collector) Reset() {
	c.blocks = map[RawBlock]struct{}{}
	c.hits = 0
}

// Snapshot produces a Log of the coverage collected so far, labelled
// with the given phase, against the given module table.
func (c *Collector) Snapshot(modules []kernel.Module, phase string) *Log {
	l := &Log{Program: c.program, Phase: phase}
	for i, m := range modules {
		l.Modules = append(l.Modules, ModuleInfo{ID: i, Lo: m.Lo, Hi: m.Hi, Name: m.Name})
	}
	l.Blocks = make([]RawBlock, 0, len(c.blocks))
	for b := range c.blocks {
		l.Blocks = append(l.Blocks, b)
	}
	sort.Slice(l.Blocks, func(i, j int) bool {
		if l.Blocks[i].Addr != l.Blocks[j].Addr {
			return l.Blocks[i].Addr < l.Blocks[j].Addr
		}
		return l.Blocks[i].Size < l.Blocks[j].Size
	})
	return l
}

// SnapshotAndReset is the nudge operation: dump then clear.
func (c *Collector) SnapshotAndReset(modules []kernel.Module, phase string) *Log {
	l := c.Snapshot(modules, phase)
	c.Reset()
	return l
}

// ModuleOf returns the module containing addr.
func (l *Log) ModuleOf(addr uint64) (ModuleInfo, bool) {
	for _, m := range l.Modules {
		if addr >= m.Lo && addr < m.Hi {
			return m, true
		}
	}
	return ModuleInfo{}, false
}

// WriteTo serializes the log in the drcov-like text format.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "DRCOV VERSION: 1\n")
	fmt.Fprintf(&b, "PROGRAM: %s\n", l.Program)
	fmt.Fprintf(&b, "PHASE: %s\n", l.Phase)
	fmt.Fprintf(&b, "MODULE TABLE: %d\n", len(l.Modules))
	for _, m := range l.Modules {
		fmt.Fprintf(&b, "%d, 0x%x, 0x%x, %s\n", m.ID, m.Lo, m.Hi, m.Name)
	}
	fmt.Fprintf(&b, "BB TABLE: %d bbs\n", len(l.Blocks))
	for _, blk := range l.Blocks {
		if m, ok := l.ModuleOf(blk.Addr); ok {
			fmt.Fprintf(&b, "module[%d]: 0x%x, %d\n", m.ID, blk.Addr-m.Lo, blk.Size)
		} else {
			fmt.Fprintf(&b, "module[-1]: 0x%x, %d\n", blk.Addr, blk.Size)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Marshal serializes the log to bytes.
func (l *Log) Marshal() []byte {
	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		return nil
	}
	return []byte(sb.String())
}

// Parse reads a log in the text format produced by WriteTo.
func Parse(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	l := &Log{}
	readLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("%w: unexpected EOF", ErrBadLog)
		}
		return sc.Text(), nil
	}
	line, err := readLine()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(line, "DRCOV VERSION:") {
		return nil, fmt.Errorf("%w: bad header %q", ErrBadLog, line)
	}
	if line, err = readLine(); err != nil {
		return nil, err
	}
	l.Program = strings.TrimSpace(strings.TrimPrefix(line, "PROGRAM:"))
	if line, err = readLine(); err != nil {
		return nil, err
	}
	l.Phase = strings.TrimSpace(strings.TrimPrefix(line, "PHASE:"))
	if line, err = readLine(); err != nil {
		return nil, err
	}
	var nmod int
	if _, err := fmt.Sscanf(line, "MODULE TABLE: %d", &nmod); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrBadLog, line)
	}
	for i := 0; i < nmod; i++ {
		if line, err = readLine(); err != nil {
			return nil, err
		}
		parts := strings.SplitN(line, ",", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("%w: module row %q", ErrBadLog, line)
		}
		id, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		lo, err2 := parseHex(parts[1])
		hi, err3 := parseHex(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: module row %q", ErrBadLog, line)
		}
		l.Modules = append(l.Modules, ModuleInfo{
			ID: id, Lo: lo, Hi: hi, Name: strings.TrimSpace(parts[3]),
		})
	}
	if line, err = readLine(); err != nil {
		return nil, err
	}
	var nbb int
	if _, err := fmt.Sscanf(line, "BB TABLE: %d bbs", &nbb); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrBadLog, line)
	}
	for i := 0; i < nbb; i++ {
		if line, err = readLine(); err != nil {
			return nil, err
		}
		var modID int
		var off uint64
		var size uint64
		if _, err := fmt.Sscanf(line, "module[%d]: 0x%x, %d", &modID, &off, &size); err != nil {
			return nil, fmt.Errorf("%w: bb row %q", ErrBadLog, line)
		}
		addr := off
		if modID >= 0 {
			found := false
			for _, m := range l.Modules {
				if m.ID == modID {
					addr = m.Lo + off
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: bb references unknown module %d", ErrBadLog, modID)
			}
		}
		l.Blocks = append(l.Blocks, RawBlock{Addr: addr, Size: size})
	}
	return l, nil
}

func parseHex(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "0x")
	return strconv.ParseUint(s, 16, 64)
}
