package experiments

import (
	"fmt"
	"strings"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/apps/kvstore"
	"github.com/dynacut/dynacut/internal/delf/link"
)

// ---------------------------------------------------------------------------
// Table 1 — Redis CVEs mitigated by feature blocking

// CVECase describes one Table 1 row: the vulnerable command, the
// exploit request, and the guard word the exploit corrupts.
type CVECase struct {
	CVE     string
	Command string
	Exploit string
	Guard   string
	// Profile requests that exercise the vulnerable command benignly,
	// so its unique blocks can be identified.
	Profile []string
}

// CVECases are the five rows of Table 1.
var CVECases = []CVECase{
	{
		CVE: "CVE-2021-32625", Command: "STRALGO LCS",
		Exploit: "STRALGO LCS " + strings.Repeat("A", 64) + "\n",
		Guard:   "lcs_guard",
		Profile: []string{"STRALGO LCS ab\n"},
	},
	{
		CVE: "CVE-2021-29477", Command: "STRALGO LCS",
		Exploit: "STRALGO LCS " + strings.Repeat("B", 48) + "\n",
		Guard:   "lcs_guard",
		Profile: []string{"STRALGO LCS xy\n"},
	},
	{
		CVE: "CVE-2019-10193", Command: "SETRANGE",
		Exploit: "SETRANGE z 64 OVERFLOW!\n",
		Guard:   "slots_guard",
		Profile: []string{"SETRANGE a 1 x\n"},
	},
	{
		CVE: "CVE-2019-10192", Command: "SETRANGE",
		Exploit: "SETRANGE z 66 SMASHSMASH\n",
		Guard:   "slots_guard",
		Profile: []string{"SETRANGE b 2 y\n"},
	},
	{
		CVE: "CVE-2016-8339", Command: "CONFIG SET",
		Exploit: "CONFIG SET " + strings.Repeat("C", 48) + "\n",
		Guard:   "cfg_guard",
		Profile: []string{"CONFIG SET p v\n"},
	},
}

// T1Row is one measured Table 1 outcome.
type T1Row struct {
	CVE                string
	Command            string
	VanillaCompromised bool // guard corrupted (or crash) without DynaCut
	BlockedMitigated   bool // guard intact + server alive with DynaCut
	ServerAlive        bool
}

// Table1 runs every exploit against a vanilla server and against a
// DynaCut-customized server with the vulnerable command blocked.
func Table1() ([]T1Row, error) {
	var rows []T1Row
	for _, c := range CVECases {
		row, err := runCVECase(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.CVE, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runCVECase(c CVECase) (*T1Row, error) {
	row := &T1Row{CVE: c.CVE, Command: c.Command}

	// Vanilla server: run the exploit, check the guard.
	vsess, vapp, err := kvSession(dynacut.KVStoreConfig{})
	if err != nil {
		return nil, err
	}
	_, _ = vsess.Request(c.Exploit) // response irrelevant; may even crash
	vsess.Machine.Run(200_000)
	corrupted, crashed, err := guardState(vsess, vapp, c.Guard)
	if err != nil {
		return nil, err
	}
	row.VanillaCompromised = corrupted || crashed

	// Protected server: block the command's unique blocks first.
	psess, papp, err := kvSession(dynacut.KVStoreConfig{})
	if err != nil {
		return nil, err
	}
	blocks, err := psess.ProfileFeatures(WantedKV, c.Profile)
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("no blocks identified for %s", c.Command)
	}
	errAddr, err := psess.SymbolAddr("resp_err")
	if err != nil {
		return nil, err
	}
	cust, err := dynacut.NewCustomizer(psess.Machine, psess.PID(), dynacut.CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		return nil, err
	}
	if _, err := cust.DisableBlocks(c.Command, blocks, dynacut.PolicyBlockEntry); err != nil {
		return nil, err
	}
	resp, err := psess.Request(c.Exploit)
	if err != nil {
		return nil, fmt.Errorf("exploit against protected server: %w", err)
	}
	corrupted, crashed, err = guardState(psess, papp, c.Guard)
	if err != nil {
		return nil, err
	}
	row.ServerAlive = !crashed
	row.BlockedMitigated = !corrupted && !crashed && strings.Contains(resp, "-ERR")
	// The read path must still work after mitigation.
	if got := psess.MustRequest("PING\n"); !strings.Contains(got, "PONG") {
		row.ServerAlive = false
	}
	return row, nil
}

// guardState reads the named guard word: returns corrupted (magic
// gone) and crashed (no live process).
func guardState(sess *dynacut.Session, app *dynacut.KVStoreApp, guard string) (bool, bool, error) {
	procs := sess.Machine.Processes()
	if len(procs) == 0 {
		return false, true, nil
	}
	sym, err := app.Exe.Symbol(guard)
	if err != nil {
		return false, false, err
	}
	v, err := procs[0].Mem().ReadU64(sym.Value)
	if err != nil {
		return false, false, err
	}
	return v != uint64(kvstore.GuardMagic), false, nil
}

// ---------------------------------------------------------------------------
// §4.2 — PLT-entry removal (ret2plt)

// PLTResult summarizes executed-PLT removal for one server.
type PLTResult struct {
	App          string
	TotalPLT     int
	ExecutedPLT  int
	RemovedPLT   int
	ForkRemoved  bool
	RemovedNames []string
}

// SecurityPLT profiles the two web servers, classifies which PLT
// entries execute only during initialization, removes them, and
// verifies the fork entry is gone on the Nginx-style server.
func SecurityPLT() ([]PLTResult, error) {
	var out []PLTResult
	for _, wcfg := range []struct {
		name    string
		workers int
	}{{"lighttpd", 0}, {"nginx", 1}} {
		res, err := pltOne(wcfg.name, wcfg.workers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wcfg.name, err)
		}
		out = append(out, *res)
	}
	return out, nil
}

func pltOne(name string, workers int) (*PLTResult, error) {
	sess, app, err := webSession(dynacut.WebServerConfig{
		Name: name, Port: 8080, Workers: workers, InitRoutines: 24,
	})
	if err != nil {
		return nil, err
	}
	serving, err := serveAndSnapshot(sess, append(append([]string{}, WantedWeb...), UndesiredWeb...))
	if err != nil {
		return nil, err
	}
	initG := sess.InitGraph()

	entries := link.PLTEntries(app.Exe)
	res := &PLTResult{App: name, TotalPLT: len(entries)}
	var removable []dynacut.AbsBlock
	base, _ := initG.ModuleBase(app.Exe.Name)
	for _, e := range entries {
		off := e.Value - base
		inInit := initG.Contains(app.Exe.Name, off)
		inServing := serving.Contains(app.Exe.Name, off)
		if inInit || inServing {
			res.ExecutedPLT++
		}
		if inInit && !inServing {
			res.RemovedPLT++
			res.RemovedNames = append(res.RemovedNames, e.Name)
			removable = append(removable, dynacut.AbsBlock{Addr: e.Value, Size: e.Size})
			if e.Name == "fork" {
				res.ForkRemoved = true
			}
		}
	}
	if len(removable) == 0 {
		return res, nil
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{Tree: workers > 0})
	if err != nil {
		return nil, err
	}
	if _, err := cust.DisableBlocks("init-plt", removable, dynacut.PolicyWipeBlocks); err != nil {
		return nil, err
	}
	// Serving continues without those PLT entries.
	if got := sess.MustRequest("GET /\n"); !strings.Contains(got, "200") {
		return nil, fmt.Errorf("GET after PLT removal -> %q", got)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// §5 — temporal syscall specialization (seccomp via process rewriting)

// SeccompResult summarizes the syscall-specialization experiment.
type SeccompResult struct {
	App string
	// AllowedSyscalls is the size of the post-init allow list.
	AllowedSyscalls int
	// GETsServedUnderFilter shows the serving path kept working.
	GETsServedUnderFilter int
	// DeniedCallFatal records that a denied syscall killed the
	// process with SIGSYS rather than being silently ignored.
	DeniedCallFatal bool
}

// SecuritySeccomp applies the post-initialization allow list to the
// web server, checks the serving path is unaffected, then verifies a
// denied syscall (the crash-handler's implicit fork path is gone, so
// we provoke one via a fresh guest that calls fork) is fatal.
func SecuritySeccomp() (*SeccompResult, error) {
	sess, app, err := webSession(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return nil, err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{})
	if err != nil {
		return nil, err
	}
	allowed := dynacut.ServingSyscalls()
	if _, err := cust.RestrictSyscalls(allowed); err != nil {
		return nil, err
	}
	res := &SeccompResult{App: app.Config.Name, AllowedSyscalls: len(allowed)}
	for i := 0; i < 5; i++ {
		resp, err := sess.Request("GET /\n")
		if err != nil || !strings.Contains(resp, "200") {
			return nil, fmt.Errorf("GET %d under filter -> %q (%v)", i, resp, err)
		}
		res.GETsServedUnderFilter++
	}

	// Denied-call check: a guest under the same filter dies with
	// SIGSYS on fork.
	forkProbe, err := dynacut.Assemble("forkprobe", `
.text
.global _start
_start:
	mov r0, 9
	syscall
	mov r0, 1
	mov r1, 0
	syscall
`)
	if err != nil {
		return nil, err
	}
	m2 := dynacut.NewMachine()
	p2, err := m2.Load(forkProbe)
	if err != nil {
		return nil, err
	}
	p2.SetSyscallFilter(allowed)
	m2.Run(1000)
	res.DeniedCallFatal = p2.KilledBy() == dynacut.SIGSYS
	return res, nil
}

// FormatSeccomp renders the result.
func FormatSeccomp(r *SeccompResult) string {
	return fmt.Sprintf(
		"%s: %d syscalls allowed post-init; %d GETs served under the filter; denied fork fatal: %v\n",
		r.App, r.AllowedSyscalls, r.GETsServedUnderFilter, r.DeniedCallFatal)
}

// ---------------------------------------------------------------------------
// §4.2 — BROP mitigation

// BROPResult contrasts the attack against vanilla and customized
// servers.
type BROPResult struct {
	// Vanilla: every crash is followed by a respawn, the attack keeps
	// probing.
	VanillaRounds   int
	VanillaRespawns uint64
	// Protected: the respawn path (fork after init) is removed; the
	// attack stops after the first crash.
	ProtectedRounds int
}

// bropAttempts bounds the brute-force rounds the attacker tries.
const bropAttempts = 5

// SecurityBROP mounts the crash-and-respawn probe loop BROP depends
// on, before and after DynaCut removes the post-init fork path.
func SecurityBROP() (*BROPResult, error) {
	res := &BROPResult{}

	// Vanilla run.
	vsess, vapp, err := webSession(dynacut.WebServerConfig{
		Name: "nginx", Port: 8080, Workers: 1,
		RespawnWorkers: true, CrashCommand: true,
	})
	if err != nil {
		return nil, err
	}
	res.VanillaRounds = bropProbe(vsess)
	if master, merr := vsess.Root(); merr == nil {
		sym, serr := vapp.Exe.Symbol("respawns")
		if serr == nil {
			res.VanillaRespawns, _ = master.Mem().ReadU64(sym.Value)
		}
	}

	// Protected run: profile normally (no crashes seen), remove
	// everything not executed post-boot — including the respawn
	// branch and the crash handler.
	psess, papp, err := webSession(dynacut.WebServerConfig{
		Name: "nginx", Port: 8080, Workers: 1,
		RespawnWorkers: true, CrashCommand: true,
	})
	if err != nil {
		return nil, err
	}
	serving, err := serveAndSnapshot(psess, WantedWeb)
	if err != nil {
		return nil, err
	}
	full := dynacut.MergeGraphs(psess.InitGraph(), serving)
	cfg := dynacut.AnalyzeCFG(papp.Exe)
	unexec := dynacut.IdentifyUnexecutedBlocks(cfg, full, papp.Exe.Name)
	cust, err := dynacut.NewCustomizer(psess.Machine, psess.PID(), dynacut.CustomizerOptions{Tree: true})
	if err != nil {
		return nil, err
	}
	if _, err := cust.DisableBlocks("unexecuted", unexec, dynacut.PolicyBlockEntry); err != nil {
		return nil, err
	}
	res.ProtectedRounds = bropProbe(psess)
	return res, nil
}

// bropProbe crashes the worker repeatedly; each round counts only if
// the attacker can still reach a (respawned) worker afterwards.
func bropProbe(sess *dynacut.Session) int {
	rounds := 0
	for i := 0; i < bropAttempts; i++ {
		conn, err := sess.Machine.Dial(sess.Port)
		if err != nil {
			break // nobody listening: the attack is dead
		}
		if _, err := conn.Write([]byte("STACKBUG /\n")); err != nil {
			break
		}
		sess.Machine.Run(3_000_000) // worker crashes; maybe respawns
		// Probe: can we still get service?
		resp, err := sess.Request("GET /\n")
		if err != nil || !strings.Contains(resp, "200") {
			break
		}
		rounds++
	}
	return rounds
}
