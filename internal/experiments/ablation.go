package experiments

import (
	"fmt"
	"strconv"

	"github.com/dynacut/dynacut"
)

// Trace-quality ablation (§5's caveat, measured): trace-based
// debloating is only as good as its profiling inputs. We profile the
// web server with increasingly complete wanted workloads, each time
// removing everything the profile did not cover, then replay the full
// workload under verifier mode and count how many removed blocks had
// to be healed back (false removals). Richer profiles → fewer
// removals undone, at the cost of removing less.

// AblationRow is one profiling-quality data point.
type AblationRow struct {
	// ProfileRequests is the number of distinct wanted request types
	// used for profiling.
	ProfileRequests int
	// BlocksRemoved is the size of the unexecuted set under that
	// profile.
	BlocksRemoved int
	// FalseRemovals is how many removed blocks the verifier restored
	// when the full workload replayed.
	FalseRemovals int
	// Broken records requests that failed even under the verifier.
	Broken int
}

// AblationTraceQuality runs the sweep. Profiles are prefixes of the
// full wanted workload.
func AblationTraceQuality() ([]AblationRow, error) {
	fullWorkload := append(append([]string{}, WantedWeb...), UndesiredWeb...)
	var rows []AblationRow
	for n := 1; n <= len(fullWorkload); n += 2 {
		row, err := ablationPoint(fullWorkload[:n], fullWorkload)
		if err != nil {
			return nil, fmt.Errorf("profile size %d: %w", n, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func ablationPoint(profile, replay []string) (*AblationRow, error) {
	sess, app, err := webSession(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return nil, err
	}
	// Profile with the reduced workload only.
	for _, r := range profile {
		if _, err := sess.Request(r); err != nil {
			return nil, err
		}
	}
	covered, err := sess.SnapshotPhase("profile")
	if err != nil {
		return nil, err
	}
	full := dynacut.MergeGraphs(sess.InitGraph(), covered)
	cfg := dynacut.AnalyzeCFG(app.Exe)
	unexec := dynacut.IdentifyUnexecutedBlocks(cfg, full, app.Config.Name)

	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return nil, err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo: errAddr,
		Verifier:   true,
	})
	if err != nil {
		return nil, err
	}
	if _, err := cust.DisableBlocks("unexecuted", unexec, dynacut.PolicyBlockEntry); err != nil {
		return nil, err
	}

	row := &AblationRow{ProfileRequests: len(profile), BlocksRemoved: len(unexec)}
	for _, r := range replay {
		resp, err := sess.Request(r)
		if err != nil || resp == "" {
			row.Broken++
		}
	}
	falseRm, err := cust.FalseRemovals()
	if err != nil {
		return nil, err
	}
	row.FalseRemovals = len(falseRm)
	return row, nil
}

// FormatAblation renders the sweep.
func FormatAblation(rows []AblationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.ProfileRequests),
			strconv.Itoa(r.BlocksRemoved),
			strconv.Itoa(r.FalseRemovals),
			strconv.Itoa(r.Broken),
		})
	}
	return table([]string{"profile reqs", "blocks removed", "false removals", "broken"}, out)
}
