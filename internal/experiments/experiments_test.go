package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative results (the
// "shape": who wins, what stays alive, which direction effects go),
// not its absolute laptop numbers.

func TestFigure2Liveness(t *testing.T) {
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, lv := range rows {
		if lv.TotalBlocks == 0 || lv.ExecutedBlocks == 0 {
			t.Errorf("%s: empty liveness", lv.Program)
		}
		// Figure 2's point: a significant share of blocks is never
		// executed, and some executed blocks are init-only.
		if lv.UnusedBlocks == 0 {
			t.Errorf("%s: no unused blocks — bloat missing", lv.Program)
		}
		if lv.InitOnlyBlocks == 0 {
			t.Errorf("%s: no init-only blocks", lv.Program)
		}
		if lv.ExecutedBlocks+lv.UnusedBlocks != lv.TotalBlocks {
			t.Errorf("%s: categories don't partition: %d+%d != %d",
				lv.Program, lv.ExecutedBlocks, lv.UnusedBlocks, lv.TotalBlocks)
		}
		if !strings.ContainsAny(lv.Map, ".#") {
			t.Errorf("%s: map rendering empty", lv.Program)
		}
	}
}

func TestFigure6FeatureRemovalOverhead(t *testing.T) {
	rows, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want lighttpd/nginx/kvstore", len(rows))
	}
	var nginx, lighttpd F6Row
	for _, r := range rows {
		if r.Total() <= 0 {
			t.Errorf("%s: zero total time", r.App)
		}
		if r.ImageBytes == 0 {
			t.Errorf("%s: empty image", r.App)
		}
		switch r.App {
		case "nginx":
			nginx = r
		case "lighttpd":
			lighttpd = r
		}
	}
	// Nginx snapshots two processes: larger image than Lighttpd.
	if nginx.Processes != 2 || lighttpd.Processes != 1 {
		t.Errorf("process counts: nginx=%d lighttpd=%d", nginx.Processes, lighttpd.Processes)
	}
	if nginx.ImageBytes <= lighttpd.ImageBytes {
		t.Errorf("nginx image %d <= lighttpd %d", nginx.ImageBytes, lighttpd.ImageBytes)
	}
}

func TestFigure6RepeatedStats(t *testing.T) {
	stats, err := Figure6Repeated(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %d apps", len(stats))
	}
	for _, s := range stats {
		if s.Reps != 3 || s.MeanTotal <= 0 {
			t.Errorf("%s: %+v", s.App, s)
		}
		// Variance across runs exists but stays well below the mean
		// (the paper: 17 ms σ on ~300-560 ms totals).
		if s.StdDev > s.MeanTotal*2 {
			t.Errorf("%s: stddev %v vs mean %v", s.App, s.StdDev, s.MeanTotal)
		}
	}
	if _, err := Figure6Repeated(1); err == nil {
		t.Error("single-rep stats accepted")
	}
}

func TestFigure7InitRemoval(t *testing.T) {
	rows, err := Figure7(false) // servers only; SPEC covered by the bench
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.InitBlocks == 0 {
			t.Errorf("%s: no init blocks removed", r.App)
		}
		if r.CheckpointRestore <= 0 || r.CodeUpdate <= 0 {
			t.Errorf("%s: zero durations", r.App)
		}
	}
}

func TestFigure7SpecCostScalesWithBlockList(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The paper: perlbench (10808 init BBs) takes ~50% longer than
	// xalancbmk (6497) — cost is proportional to the init-block list.
	perl, ok := profileByName("600.perlbench_s")
	if !ok {
		t.Fatal("no perlbench profile")
	}
	mcf, ok := profileByName("605.mcf_s")
	if !ok {
		t.Fatal("no mcf profile")
	}
	perlRow, err := figure7Spec(perl)
	if err != nil {
		t.Fatal(err)
	}
	mcfRow, err := figure7Spec(mcf)
	if err != nil {
		t.Fatal(err)
	}
	if perlRow.InitBlocks <= mcfRow.InitBlocks {
		t.Errorf("perlbench init blocks %d <= mcf %d", perlRow.InitBlocks, mcfRow.InitBlocks)
	}
	// mcf is the smallest benchmark; its rewrite must be cheaper.
	if perlRow.CodeUpdate <= mcfRow.CodeUpdate {
		t.Errorf("perlbench code update %v <= mcf %v", perlRow.CodeUpdate, mcfRow.CodeUpdate)
	}
}

func TestFigure8ServiceInterruption(t *testing.T) {
	res, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ServerSurvived {
		t.Fatal("server did not survive the rewrites")
	}
	if len(res.WithDynaCut) != figure8Buckets || len(res.Baseline) != figure8Buckets {
		t.Fatalf("series lengths %d/%d", len(res.WithDynaCut), len(res.Baseline))
	}
	// Throughput before, between and after the rewrites is nonzero.
	sum := func(pts []F8Point, lo, hi int) float64 {
		var s float64
		for _, p := range pts {
			if p.Bucket >= lo && p.Bucket < hi {
				s += p.Throughput
			}
		}
		return s
	}
	if sum(res.WithDynaCut, 0, res.DisableAt) == 0 {
		t.Error("no throughput before disable")
	}
	if sum(res.WithDynaCut, res.DisableAt+2, res.EnableAt) == 0 {
		t.Error("no throughput while SET disabled")
	}
	if sum(res.WithDynaCut, res.EnableAt+2, figure8Buckets) == 0 {
		t.Error("no throughput after re-enable")
	}
	// "No observable overall performance overhead": once restored,
	// per-request cost matches the baseline closely.
	if res.MeanLatencyWith == 0 || res.MeanLatencyBaseline == 0 {
		t.Fatal("latency data missing")
	}
	ratio := res.MeanLatencyWith / res.MeanLatencyBaseline
	if ratio > 1.2 || ratio < 0.8 {
		t.Errorf("steady-state latency changed by %.0f%%", (ratio-1)*100)
	}
}

func TestFigure9InitBlocks(t *testing.T) {
	rows, err := Figure9(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ExecutedBB == 0 || r.TotalBB < r.ExecutedBB {
			t.Errorf("%s: executed %d of %d", r.App, r.ExecutedBB, r.TotalBB)
		}
		if r.RemovedBB == 0 || r.RemovedBB > r.ExecutedBB {
			t.Errorf("%s: removed %d of executed %d", r.App, r.RemovedBB, r.ExecutedBB)
		}
		// The paper's headline: servers remove a large share (46-56%)
		// of executed blocks. Require at least 20% here.
		if r.RemovedPct < 0.20 {
			t.Errorf("%s: removal pct %.1f%% too low", r.App, r.RemovedPct*100)
		}
		if r.InitCodeRemoved == 0 {
			t.Errorf("%s: zero init code size", r.App)
		}
	}
}

func TestFigure10LiveBlocks(t *testing.T) {
	res, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) < 10 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if res.Phases[0].LivePct != 1.0 {
		t.Errorf("vanilla boot live = %.2f, want 1.0", res.Phases[0].LivePct)
	}
	// Monotone story: deploy < vanilla; init-removed < deployed;
	// window slightly above the closed state.
	deployed := res.Phases[1].LivePct
	initRemoved := res.Phases[2].LivePct
	if !(deployed < 1.0 && initRemoved < deployed) {
		t.Errorf("live sequence wrong: deployed=%.3f initRemoved=%.3f", deployed, initRemoved)
	}
	var window, closed float64
	for _, ph := range res.Phases {
		switch ph.Label {
		case "PUT/DELETE window":
			window = ph.LivePct
		case "window closed":
			closed = ph.LivePct
		}
	}
	if !(window > closed) {
		t.Errorf("window %.4f not above closed %.4f", window, closed)
	}
	// DynaCut beats both static baselines at every post-deploy point.
	if res.MaxPct >= res.ChiselPct || res.MaxPct >= res.RazorPct {
		t.Errorf("DynaCut max %.3f not below chisel %.3f / razor %.3f",
			res.MaxPct, res.ChiselPct, res.RazorPct)
	}
	if res.ChiselPct >= res.RazorPct {
		t.Errorf("chisel %.3f >= razor %.3f", res.ChiselPct, res.RazorPct)
	}
	if FormatF10(res) == "" {
		t.Error("empty rendering")
	}
}

func TestTable1CVEMitigation(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(CVECases) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.VanillaCompromised {
			t.Errorf("%s: exploit did not fire on the vanilla server", r.CVE)
		}
		if !r.BlockedMitigated {
			t.Errorf("%s: DynaCut did not mitigate", r.CVE)
		}
		if !r.ServerAlive {
			t.Errorf("%s: protected server died", r.CVE)
		}
	}
}

func TestSecurityPLTRemoval(t *testing.T) {
	results, err := SecurityPLT()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.TotalPLT == 0 || r.ExecutedPLT == 0 {
			t.Errorf("%s: no PLT entries (%+v)", r.App, r)
		}
		// The paper removes a majority of executed entries (43/56 and
		// 33/57). Require a meaningful share here.
		if r.RemovedPLT == 0 {
			t.Errorf("%s: no PLT entries removed", r.App)
		}
		if r.RemovedPLT >= r.ExecutedPLT {
			t.Errorf("%s: removed %d >= executed %d", r.App, r.RemovedPLT, r.ExecutedPLT)
		}
		if r.App == "nginx" && !r.ForkRemoved {
			t.Errorf("nginx: fork PLT entry not classified init-only: removed=%v", r.RemovedNames)
		}
	}
}

func TestAblationTraceQuality(t *testing.T) {
	rows, err := AblationTraceQuality()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Poorer profiles remove more blocks…
	if first.BlocksRemoved <= last.BlocksRemoved {
		t.Errorf("removal counts not decreasing: %d -> %d",
			first.BlocksRemoved, last.BlocksRemoved)
	}
	// …and produce more false removals under replay.
	if first.FalseRemovals <= last.FalseRemovals {
		t.Errorf("false removals not decreasing: %d -> %d",
			first.FalseRemovals, last.FalseRemovals)
	}
	// The verifier keeps every replayed request working regardless of
	// profile quality — the paper's usability argument.
	for _, r := range rows {
		if r.Broken != 0 {
			t.Errorf("profile %d: %d broken requests under verifier",
				r.ProfileRequests, r.Broken)
		}
	}
	if FormatAblation(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestSecuritySeccomp(t *testing.T) {
	res, err := SecuritySeccomp()
	if err != nil {
		t.Fatal(err)
	}
	if res.GETsServedUnderFilter != 5 {
		t.Errorf("GETs under filter = %d", res.GETsServedUnderFilter)
	}
	if !res.DeniedCallFatal {
		t.Error("denied fork was not fatal")
	}
	if FormatSeccomp(res) == "" {
		t.Error("empty rendering")
	}
}

func TestSecurityBROP(t *testing.T) {
	res, err := SecurityBROP()
	if err != nil {
		t.Fatal(err)
	}
	// Vanilla: the respawn loop feeds the brute force.
	if res.VanillaRounds < 3 {
		t.Errorf("vanilla attack rounds = %d, want >= 3", res.VanillaRounds)
	}
	if res.VanillaRespawns == 0 {
		t.Error("no respawns observed on vanilla server")
	}
	// Protected: the attack dies immediately.
	if res.ProtectedRounds != 0 {
		t.Errorf("protected attack rounds = %d, want 0", res.ProtectedRounds)
	}
}
