package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFormatF2(t *testing.T) {
	out := FormatF2([]Liveness{{
		Program: "x", TotalBlocks: 100, ExecutedBlocks: 60,
		InitOnlyBlocks: 20, UnusedBlocks: 40,
	}})
	for _, want := range []string{"x", "100", "60", "20", "40", "40.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("F2 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatF6(t *testing.T) {
	out := FormatF6([]F6Row{{
		App: "srv", Processes: 2, ImageBytes: 4096,
		InsertHandler: time.Millisecond, DisableInt3: 2 * time.Millisecond,
		Checkpoint: 3 * time.Millisecond, Restore: 4 * time.Millisecond,
	}})
	for _, want := range []string{"srv", "2", "4.0KB", "10ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("F6 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatF7AndF9(t *testing.T) {
	f7 := FormatF7([]F7Row{{
		App: "b", CodeSize: 2048, ImageBytes: 1 << 21, InitBlocks: 12,
		CheckpointRestore: time.Millisecond, CodeUpdate: time.Microsecond,
	}})
	for _, want := range []string{"b", "2.0KB", "2.00MB", "12"} {
		if !strings.Contains(f7, want) {
			t.Errorf("F7 missing %q:\n%s", want, f7)
		}
	}
	f9 := FormatF9([]F9Row{{
		App: "b", TotalBB: 10, ExecutedBB: 8, RemovedBB: 4,
		CodeSize: 100, InitCodeRemoved: 50, RemovedPct: 0.5,
	}})
	for _, want := range []string{"b", "50.0%", "100B", "50B"} {
		if !strings.Contains(f9, want) {
			t.Errorf("F9 missing %q:\n%s", want, f9)
		}
	}
}

func TestFormatF8Sparkline(t *testing.T) {
	r := &F8Result{
		DisableAt: 1, EnableAt: 2, ServerSurvived: true,
		WithDynaCut: []F8Point{{0, 10}, {1, 0}, {2, 10}},
		Baseline:    []F8Point{{0, 10}, {1, 10}, {2, 10}},
	}
	out := FormatF8(r)
	if !strings.Contains(out, "server survived: true") {
		t.Errorf("F8 output:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || !strings.Contains(lines[0], "[") {
		t.Errorf("missing sparkline:\n%s", out)
	}
	// The dip bucket renders as a space (zero level).
	if !strings.Contains(lines[0], " ") {
		t.Errorf("dip not visible:\n%s", out)
	}
}

func TestFormatT1AndPLTAndBROP(t *testing.T) {
	t1 := FormatT1([]T1Row{{
		CVE: "CVE-X", Command: "CMD",
		VanillaCompromised: true, BlockedMitigated: true, ServerAlive: true,
	}})
	if !strings.Contains(t1, "CVE-X") || !strings.Contains(t1, "yes") {
		t.Errorf("T1:\n%s", t1)
	}
	plt := FormatPLT([]PLTResult{{
		App: "srv", TotalPLT: 10, ExecutedPLT: 9, RemovedPLT: 4,
		ForkRemoved: true, RemovedNames: []string{"fork", "bind"},
	}})
	if !strings.Contains(plt, "fork,bind") {
		t.Errorf("PLT:\n%s", plt)
	}
	brop := FormatBROP(&BROPResult{VanillaRounds: 5, VanillaRespawns: 5})
	if !strings.Contains(brop, "5 successful probe rounds") {
		t.Errorf("BROP:\n%s", brop)
	}
	sec := FormatSeccomp(&SeccompResult{App: "srv", AllowedSyscalls: 11,
		GETsServedUnderFilter: 5, DeniedCallFatal: true})
	if !strings.Contains(sec, "11 syscalls") {
		t.Errorf("seccomp:\n%s", sec)
	}
	abl := FormatAblation([]AblationRow{{ProfileRequests: 1, BlocksRemoved: 50, FalseRemovals: 3}})
	if !strings.Contains(abl, "50") {
		t.Errorf("ablation:\n%s", abl)
	}
}

func TestFmtKB(t *testing.T) {
	for in, want := range map[uint64]string{
		10:        "10B",
		2048:      "2.0KB",
		3 << 20:   "3.00MB",
		1<<20 - 1: "1024.0KB",
	} {
		if got := fmtKB(in); got != want {
			t.Errorf("fmtKB(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"xxx", "y"}, {"z", "wwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	w := len(lines[0])
	for i, l := range lines {
		if len(l) != w {
			t.Errorf("line %d width %d != %d", i, len(l), w)
		}
	}
}
