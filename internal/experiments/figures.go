package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/loadgen"
)

// ---------------------------------------------------------------------------
// Figure 2 — basic-block liveness maps (605.mcf_s and Lighttpd)

// Liveness categorizes a program's static blocks by observed use.
type Liveness struct {
	Program        string
	TotalBlocks    int
	ExecutedBlocks int // blue+red in the paper's figure
	InitOnlyBlocks int // red
	UnusedBlocks   int // gray
	// Map is an ASCII rendering: one character per static block in
	// address order ('#' hot, 'i' init-only, '.' never executed).
	Map string
}

// Figure2 profiles the mcf-like benchmark and the Lighttpd-like
// server and categorizes their basic blocks.
func Figure2() ([]Liveness, error) {
	var out []Liveness

	mcf, err := livenessSpec("605.mcf_s")
	if err != nil {
		return nil, err
	}
	out = append(out, *mcf)

	httpd, err := livenessWeb()
	if err != nil {
		return nil, err
	}
	out = append(out, *httpd)
	return out, nil
}

func livenessSpec(name string) (*Liveness, error) {
	prof, ok := profileByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", name)
	}
	app, err := dynacut.BuildSpec(prof)
	if err != nil {
		return nil, err
	}
	m := dynacut.NewMachine()
	col := newCollector(app.Exe.Name, m)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		return nil, err
	}
	var initG, fullG *dynacut.Graph
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if initG == nil {
			initG = dynacut.GraphFromLog(col.Snapshot(p.Modules(), "init"))
		}
	})
	m.Run(200_000_000)
	if !p.Exited() {
		return nil, fmt.Errorf("experiments: %s did not finish", name)
	}
	fullG = dynacut.GraphFromLog(col.Snapshot(p.Modules(), "full"))
	if initG == nil {
		initG = fullG
	}
	servingG := dynacut.DiffGraphs(fullG, initG) // executed after init... approximation below refines
	return liveness(app.Exe, initG, servingG, fullG)
}

func livenessWeb() (*Liveness, error) {
	sess, app, err := webSession(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return nil, err
	}
	serving, err := serveAndSnapshot(sess, append(append([]string{}, WantedWeb...), UndesiredWeb...))
	if err != nil {
		return nil, err
	}
	initG := sess.InitGraph()
	full := dynacut.MergeGraphs(initG, serving)
	return liveness(app.Exe, initG, serving, full)
}

func liveness(exe *dynacut.Binary, initG, servingG, fullG *dynacut.Graph) (*Liveness, error) {
	cfg := dynacut.AnalyzeCFG(exe)
	initOnly := dynacut.IdentifyInitBlocks(initG, servingG, exe.Name)
	initSet := map[uint64]bool{}
	for _, b := range initOnly {
		initSet[b.Addr] = true
	}
	unused := dynacut.IdentifyUnexecutedBlocks(cfg, fullG, exe.Name)
	unusedSet := map[uint64]bool{}
	for _, b := range unused {
		unusedSet[b.Addr] = true
	}
	lv := &Liveness{Program: exe.Name, TotalBlocks: cfg.Count()}
	var mapB strings.Builder
	for i, blk := range cfg.Sorted() {
		switch {
		case unusedSet[blk.Addr]:
			lv.UnusedBlocks++
			mapB.WriteByte('.')
		case initSet[blk.Addr]:
			lv.InitOnlyBlocks++
			lv.ExecutedBlocks++
			mapB.WriteByte('i')
		default:
			lv.ExecutedBlocks++
			mapB.WriteByte('#')
		}
		if (i+1)%64 == 0 {
			mapB.WriteByte('\n')
		}
	}
	lv.Map = mapB.String()
	return lv, nil
}

// ---------------------------------------------------------------------------
// Figure 6 — feature-removal overhead breakdown

// F6Row is one bar of Figure 6.
type F6Row struct {
	App           string
	Processes     int
	ImageBytes    int
	InsertHandler time.Duration
	DisableInt3   time.Duration
	Checkpoint    time.Duration
	Restore       time.Duration
}

// Total is the full service-interruption window.
func (r F6Row) Total() time.Duration {
	return r.InsertHandler + r.DisableInt3 + r.Checkpoint + r.Restore
}

// Figure6 disables the WebDAV write methods on Lighttpd- and
// Nginx-style servers and the SET command on the Redis-like store,
// reporting the per-stage rewrite cost.
func Figure6() ([]F6Row, error) {
	var rows []F6Row

	web := []struct {
		name    string
		workers int
	}{
		{"lighttpd", 0},
		{"nginx", 1},
	}
	for _, wcfg := range web {
		sess, app, err := webSession(dynacut.WebServerConfig{Name: wcfg.name, Port: 8080, Workers: wcfg.workers})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wcfg.name, err)
		}
		blocks, err := sess.ProfileFeatures(WantedWeb, UndesiredWeb)
		if err != nil {
			return nil, fmt.Errorf("%s profile: %w", wcfg.name, err)
		}
		errAddr, err := sess.SymbolAddr("resp_403")
		if err != nil {
			return nil, err
		}
		cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
			Tree:       wcfg.workers > 0,
			RedirectTo: errAddr,
		})
		if err != nil {
			return nil, err
		}
		stats, err := cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
		if err != nil {
			return nil, fmt.Errorf("%s disable: %w", wcfg.name, err)
		}
		rows = append(rows, F6Row{
			App:           app.Config.Name,
			Processes:     wcfg.workers + 1,
			ImageBytes:    stats.ImageBytes,
			InsertHandler: stats.InsertHandler,
			DisableInt3:   stats.CodeUpdate,
			Checkpoint:    stats.Checkpoint,
			Restore:       stats.Restore,
		})
	}

	// Redis-like: disable SET.
	sess, app, err := kvSession(dynacut.KVStoreConfig{})
	if err != nil {
		return nil, err
	}
	blocks, err := sess.ProfileFeatures(WantedKV, UndesiredKV)
	if err != nil {
		return nil, err
	}
	errAddr, err := sess.SymbolAddr("resp_err")
	if err != nil {
		return nil, err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		return nil, err
	}
	stats, err := cust.DisableBlocks("set", blocks, dynacut.PolicyBlockEntry)
	if err != nil {
		return nil, err
	}
	rows = append(rows, F6Row{
		App:           app.Config.Name,
		Processes:     1,
		ImageBytes:    stats.ImageBytes,
		InsertHandler: stats.InsertHandler,
		DisableInt3:   stats.CodeUpdate,
		Checkpoint:    stats.Checkpoint,
		Restore:       stats.Restore,
	})
	return rows, nil
}

// F6Stats aggregates repeated Figure 6 runs: the paper reports the
// mean of 10 repetitions with a 17 ms standard deviation.
type F6Stats struct {
	App       string
	Reps      int
	MeanTotal time.Duration
	StdDev    time.Duration
}

// Figure6Repeated runs the feature-removal measurement reps times and
// reports mean and standard deviation per app.
func Figure6Repeated(reps int) ([]F6Stats, error) {
	if reps < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 reps, got %d", reps)
	}
	samples := map[string][]float64{}
	order := []string{}
	for i := 0; i < reps; i++ {
		rows, err := Figure6()
		if err != nil {
			return nil, fmt.Errorf("rep %d: %w", i, err)
		}
		for _, r := range rows {
			if _, seen := samples[r.App]; !seen {
				order = append(order, r.App)
			}
			samples[r.App] = append(samples[r.App], float64(r.Total()))
		}
	}
	var out []F6Stats
	for _, app := range order {
		vs := samples[app]
		var sum float64
		for _, v := range vs {
			sum += v
		}
		mean := sum / float64(len(vs))
		var varSum float64
		for _, v := range vs {
			varSum += (v - mean) * (v - mean)
		}
		std := math.Sqrt(varSum / float64(len(vs)-1))
		out = append(out, F6Stats{
			App:       app,
			Reps:      len(vs),
			MeanTotal: time.Duration(mean),
			StdDev:    time.Duration(std),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 7 — initialization-code removal cost

// F7Row is one bar of Figure 7.
type F7Row struct {
	App               string
	CodeSize          uint64
	ImageBytes        int
	InitBlocks        int
	CheckpointRestore time.Duration
	CodeUpdate        time.Duration
}

// Figure7 removes initialization-only code from the two web servers
// and, when includeSpec is set, from every SPEC-like profile.
func Figure7(includeSpec bool) ([]F7Row, error) {
	var rows []F7Row

	for _, wcfg := range []struct {
		name    string
		workers int
	}{{"lighttpd", 0}, {"nginx", 1}} {
		sess, app, err := webSession(dynacut.WebServerConfig{
			Name: wcfg.name, Port: 8080, Workers: wcfg.workers, InitRoutines: 24,
		})
		if err != nil {
			return nil, err
		}
		serving, err := serveAndSnapshot(sess, append(append([]string{}, WantedWeb...), UndesiredWeb...))
		if err != nil {
			return nil, err
		}
		blocks := dynacut.IdentifyInitBlocks(sess.InitGraph(), serving, app.Config.Name)
		cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{Tree: wcfg.workers > 0})
		if err != nil {
			return nil, err
		}
		stats, err := cust.DisableBlocks("init", blocks, dynacut.PolicyWipeBlocks)
		if err != nil {
			return nil, fmt.Errorf("%s init removal: %w", wcfg.name, err)
		}
		rows = append(rows, F7Row{
			App:               app.Config.Name,
			CodeSize:          app.Exe.TextSize(),
			ImageBytes:        stats.ImageBytes,
			InitBlocks:        stats.BlocksPatched,
			CheckpointRestore: stats.Checkpoint + stats.Restore,
			CodeUpdate:        stats.CodeUpdate,
		})
	}
	if !includeSpec {
		return rows, nil
	}
	for _, prof := range dynacut.SpecProfiles() {
		row, err := figure7Spec(prof)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", prof.Name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// specPhase runs a SPEC-like guest to its nudge and returns the
// machine, process and phase coverage graphs (init, serving-so-far).
func specPhase(prof dynacut.SpecProfile) (*dynacut.Machine, *dynacut.SpecApp, *dynacut.Process, *dynacut.Graph, *dynacut.Graph, error) {
	app, err := dynacut.BuildSpec(prof)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	m := dynacut.NewMachine()
	col := newCollector(app.Exe.Name, m)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	var initG *dynacut.Graph
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if initG == nil {
			initG = dynacut.GraphFromLog(col.SnapshotAndReset(p.Modules(), "init"))
		}
	})
	if !m.RunUntil(func() bool { return initG != nil }, 500_000_000) {
		return nil, nil, nil, nil, nil, fmt.Errorf("experiments: %s never nudged", prof.Name)
	}
	// Let roughly two serving passes run so every serving-phase
	// function is covered while the guest is still far from exiting.
	passCost := uint64(prof.ExecFuncs-prof.InitFuncs)*20 + 1000
	m.Run(2 * passCost)
	servingG := dynacut.GraphFromLog(col.Snapshot(p.Modules(), "serving"))
	return m, app, p, initG, servingG, nil
}

func figure7Spec(prof dynacut.SpecProfile) (*F7Row, error) {
	m, app, p, initG, servingG, err := specPhase(prof)
	if err != nil {
		return nil, err
	}
	blocks := dynacut.IdentifyInitBlocks(initG, servingG, app.Exe.Name)
	if len(blocks) == 0 {
		return nil, fmt.Errorf("experiments: %s has no init blocks", prof.Name)
	}
	cust, err := dynacut.NewCustomizer(m, p.PID(), dynacut.CustomizerOptions{})
	if err != nil {
		return nil, err
	}
	stats, err := cust.DisableBlocks("init", blocks, dynacut.PolicyWipeBlocks)
	if err != nil {
		return nil, err
	}
	return &F7Row{
		App:               prof.Name,
		CodeSize:          app.Exe.TextSize(),
		ImageBytes:        stats.ImageBytes,
		InitBlocks:        stats.BlocksPatched,
		CheckpointRestore: stats.Checkpoint + stats.Restore,
		CodeUpdate:        stats.CodeUpdate,
	}, nil
}

// ---------------------------------------------------------------------------
// Figure 8 — service interruption timeline

// F8Point is one throughput sample.
type F8Point struct {
	Bucket     int
	Throughput float64 // responses per wall-clock bucket
}

// F8Result is the Figure 8 timeline.
type F8Result struct {
	WithDynaCut []F8Point
	Baseline    []F8Point
	DisableAt   int
	EnableAt    int
	// ServerSurvived records that the customized server kept running
	// through both rewrites.
	ServerSurvived bool
	// Mean request latency (guest instructions) with and without the
	// rewrites: the paper's "no observable overall performance
	// overhead" claim — once restored, requests cost the same.
	MeanLatencyWith     float64
	MeanLatencyBaseline float64
	// P99 latency for both series.
	P99LatencyWith     uint64
	P99LatencyBaseline uint64
}

// The timeline runs on the machine's virtual clock: 70 buckets of
// figure8BucketTicks instructions each, with the SET command disabled
// at bucket 20 and re-enabled at bucket 48 (the paper's 70-second
// trace). The wall-clock cost of each rewrite is charged to the
// virtual clock via TicksPerSecond, so the service-interruption
// window appears in the timeline at its true relative size.
const (
	figure8Buckets     = 70
	figure8BucketTicks = 100_000
	// figure8TickRate maps 1 second of rewrite wall time to virtual
	// ticks; calibrated so a ~100–500µs rewrite spans ~1–2 buckets,
	// like the paper's sub-second dip in a 70 s window.
	figure8TickRate = 400_000_000
)

// Figure8 drives a GET workload against the Redis-like store while
// DynaCut disables and later re-enables the SET command, sampling
// throughput per virtual-time bucket. The baseline series repeats the
// run without any rewriting.
func Figure8() (*F8Result, error) {
	withCut, withRes, survived, err := figure8Run(true)
	if err != nil {
		return nil, err
	}
	baseline, baseRes, _, err := figure8Run(false)
	if err != nil {
		return nil, err
	}
	return &F8Result{
		WithDynaCut:         withCut,
		Baseline:            baseline,
		DisableAt:           20,
		EnableAt:            48,
		ServerSurvived:      survived,
		MeanLatencyWith:     withRes.Latency.Mean(),
		MeanLatencyBaseline: baseRes.Latency.Mean(),
		P99LatencyWith:      withRes.Latency.Percentile(99),
		P99LatencyBaseline:  baseRes.Latency.Percentile(99),
	}, nil
}

func figure8Run(rewrite bool) ([]F8Point, *loadgen.Result, bool, error) {
	sess, app, err := kvSession(dynacut.KVStoreConfig{})
	if err != nil {
		return nil, nil, false, err
	}
	// Profile SET's unique blocks first.
	blocks, err := sess.ProfileFeatures(WantedKV, UndesiredKV)
	if err != nil {
		return nil, nil, false, err
	}
	errAddr, err := sess.SymbolAddr("resp_err")
	if err != nil {
		return nil, nil, false, err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo:     errAddr,
		TicksPerSecond: figure8TickRate,
		// A rewrite normally charges 1–2 buckets; cap the charge so a
		// descheduled host (a loaded -race run) cannot inflate one
		// rewrite's wall time into an interruption that swallows the
		// rest of the 70-bucket timeline.
		MaxChargeTicks: 8 * figure8BucketTicks,
	})
	if err != nil {
		return nil, nil, false, err
	}
	// Stop tracing: the measurement loop should run at full speed.
	sess.Machine.SetTracer(nil)

	// The redis-benchmark analogue: a GET-only mix with a hook that
	// performs the rewrites at the paper's timeline points. A rewrite
	// charges virtual time, so the following bucket(s) show zero
	// throughput — the service-interruption window.
	driver := &loadgen.Driver{
		Machine:     sess.Machine,
		Port:        app.Config.Port,
		Mix:         loadgen.NewMix(loadgen.Request{Payload: "GET a\n"}),
		BucketTicks: figure8BucketTicks,
		Hook: func(bucket int) error {
			if !rewrite {
				return nil
			}
			switch bucket {
			case 20:
				_, err := cust.DisableBlocks("set", blocks, dynacut.PolicyBlockEntry)
				return err
			case 48:
				_, err := cust.EnableBlocks("set")
				return err
			}
			return nil
		},
	}
	res, err := driver.Run(figure8Buckets)
	if err != nil {
		return nil, nil, false, err
	}
	points := make([]F8Point, 0, len(res.Buckets))
	for _, b := range res.Buckets {
		points = append(points, F8Point{Bucket: b.Index, Throughput: float64(b.Responses)})
	}
	alive := len(sess.Machine.Processes()) > 0
	return points, res, alive, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — executed vs removed basic blocks

// F9Row is one group of Figure 9 plus its table row.
type F9Row struct {
	App             string
	TotalBB         int
	ExecutedBB      int
	RemovedBB       int
	CodeSize        uint64
	InitCodeRemoved uint64
	RemovedPct      float64 // removed / executed
}

// Figure9 measures, for the web servers and the SPEC-like suite, how
// many executed blocks are initialization-only and removable.
func Figure9(includeSpec bool) ([]F9Row, error) {
	var rows []F9Row
	for _, wcfg := range []struct {
		name    string
		workers int
	}{{"lighttpd", 0}, {"nginx", 1}} {
		sess, app, err := webSession(dynacut.WebServerConfig{
			Name: wcfg.name, Port: 8080, Workers: wcfg.workers, InitRoutines: 24,
		})
		if err != nil {
			return nil, err
		}
		serving, err := serveAndSnapshot(sess, append(append([]string{}, WantedWeb...), UndesiredWeb...))
		if err != nil {
			return nil, err
		}
		initG := sess.InitGraph()
		rows = append(rows, figure9Row(app.Exe, initG, serving))
	}
	if !includeSpec {
		return rows, nil
	}
	for _, prof := range dynacut.SpecProfiles() {
		_, app, _, initG, servingG, err := specPhase(prof)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", prof.Name, err)
		}
		rows = append(rows, figure9Row(app.Exe, initG, servingG))
	}
	return rows, nil
}

func figure9Row(exe *dynacut.Binary, initG, servingG *dynacut.Graph) F9Row {
	cfg := dynacut.AnalyzeCFG(exe)
	removed := dynacut.IdentifyInitBlocks(initG, servingG, exe.Name)
	full := dynacut.MergeGraphs(initG, servingG)
	executed := 0
	for _, b := range full.Blocks() {
		if b.Module == exe.Name {
			executed++
		}
	}
	row := F9Row{
		App:             exe.Name,
		TotalBB:         cfg.Count(),
		ExecutedBB:      executed,
		RemovedBB:       len(removed),
		CodeSize:        exe.TextSize(),
		InitCodeRemoved: blocksBytes(removed),
	}
	if executed > 0 {
		row.RemovedPct = float64(len(removed)) / float64(executed)
	}
	return row
}

// ---------------------------------------------------------------------------
// Figure 10 — live basic blocks over time

// F10Phase is one step of the Figure 10 timeline.
type F10Phase struct {
	Time  int
	Label string
	// LivePct is the fraction of the binary's static blocks still
	// reachable under DynaCut.
	LivePct float64
}

// F10Result compares DynaCut's per-phase live fraction against the
// constant fractions of the static baselines.
type F10Result struct {
	Phases    []F10Phase
	RazorPct  float64
	ChiselPct float64
	MaxPct    float64 // DynaCut's worst (highest) post-deploy point
}

// Figure10 walks the Lighttpd lifecycle: deploy (never-executed code
// removed), post-init (init-only code removed), a PUT/DELETE
// re-enable window, and back.
func Figure10() (*F10Result, error) {
	// ExtraFeatures models the untraced feature bloat of a real
	// server: without it nearly every block executes during
	// profiling and the static baselines look artificially good.
	sess, app, err := webSession(dynacut.WebServerConfig{
		Name: "lighttpd", Port: 8080, InitRoutines: 24, ExtraFeatures: 24,
	})
	if err != nil {
		return nil, err
	}
	// Full profiling pass: wanted + undesired + init.
	serving, err := serveAndSnapshot(sess, append(append([]string{}, WantedWeb...), UndesiredWeb...))
	if err != nil {
		return nil, err
	}
	initG := sess.InitGraph()
	full := dynacut.MergeGraphs(initG, serving)
	cfg := dynacut.AnalyzeCFG(app.Exe)
	total := float64(cfg.Count())

	razor, err := dynacut.RazorDebloat(app.Exe, full)
	if err != nil {
		return nil, err
	}
	chisel, err := dynacut.ChiselDebloat(app.Exe, full)
	if err != nil {
		return nil, err
	}

	unexec := dynacut.IdentifyUnexecutedBlocks(cfg, full, app.Exe.Name)
	initOnly := dynacut.IdentifyInitBlocks(initG, serving, app.Exe.Name)
	putBlocks, err := sess.ProfileFeatures(WantedWeb, UndesiredWeb)
	if err != nil {
		return nil, err
	}

	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return nil, err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		return nil, err
	}

	res := &F10Result{
		RazorPct:  razor.LiveFraction(),
		ChiselPct: chisel.LiveFraction(),
	}
	live := func() float64 {
		return (total - float64(cust.DisabledBlockCount())) / total
	}
	record := func(tm int, label string) {
		res.Phases = append(res.Phases, F10Phase{Time: tm, Label: label, LivePct: live()})
	}

	record(0, "boot (vanilla)")
	// Deploy: drop never-executed blocks and the write feature.
	if _, err := cust.DisableBlocks("unexecuted", unexec, dynacut.PolicyBlockEntry); err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	if _, err := cust.DisableBlocks("webdav-write", putBlocks, dynacut.PolicyBlockEntry); err != nil {
		return nil, fmt.Errorf("deploy features: %w", err)
	}
	record(1, "deployed (read-only)")
	// Finish initialization: drop init-only blocks.
	if _, err := cust.DisableBlocks("init", initOnly, dynacut.PolicyBlockEntry); err != nil {
		return nil, fmt.Errorf("post-init: %w", err)
	}
	record(2, "init removed")
	for tm := 3; tm <= 7; tm++ {
		record(tm, "serving")
	}
	// Admin window: re-enable PUT/DELETE.
	if _, err := cust.EnableBlocks("webdav-write"); err != nil {
		return nil, fmt.Errorf("enable window: %w", err)
	}
	record(8, "PUT/DELETE window")
	if resp := sess.MustRequest("PUT /f data\n"); !strings.Contains(resp, "201") {
		return nil, fmt.Errorf("PUT during window -> %q", resp)
	}
	if _, err := cust.DisableBlocks("webdav-write", putBlocks, dynacut.PolicyBlockEntry); err != nil {
		return nil, fmt.Errorf("close window: %w", err)
	}
	record(9, "window closed")
	for tm := 10; tm <= 12; tm++ {
		record(tm, "serving")
	}
	for _, ph := range res.Phases[1:] {
		if ph.LivePct > res.MaxPct {
			res.MaxPct = ph.LivePct
		}
	}
	return res, nil
}

// FormatF10 renders the timeline.
func FormatF10(r *F10Result) string {
	rows := make([][]string, 0, len(r.Phases))
	for _, ph := range r.Phases {
		rows = append(rows, []string{
			strconv.Itoa(ph.Time),
			fmt.Sprintf("%.1f%%", ph.LivePct*100),
			ph.Label,
		})
	}
	s := table([]string{"t", "live", "phase"}, rows)
	s += fmt.Sprintf("RAZOR  constant: %.1f%% live\n", r.RazorPct*100)
	s += fmt.Sprintf("CHISEL constant: %.1f%% live\n", r.ChiselPct*100)
	s += fmt.Sprintf("DynaCut max post-deploy: %.1f%% live\n", r.MaxPct*100)
	return s
}
