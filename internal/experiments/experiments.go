// Package experiments regenerates every table and figure of the
// paper's evaluation (§4) against the simulated stack. Each
// experiment returns structured rows/series that the benchmark
// harness (bench_test.go) and cmd/dynacut print; EXPERIMENTS.md
// records paper-reported vs measured values.
package experiments

import (
	"fmt"
	"strings"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/trace"
)

// newCollector attaches a fresh coverage collector to the machine.
func newCollector(program string, m *dynacut.Machine) *dynacut.Collector {
	col := trace.NewCollector(program)
	m.SetTracer(col)
	return col
}

// profileByName finds a built-in SPEC-like profile.
func profileByName(name string) (dynacut.SpecProfile, bool) {
	for _, p := range dynacut.SpecProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return dynacut.SpecProfile{}, false
}

// Request workloads used across experiments.
var (
	// WantedWeb is the wanted web workload (read-only serving).
	WantedWeb = []string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"}
	// UndesiredWeb is the undesired web workload (WebDAV writes), the
	// paper's chosen feature to disable.
	UndesiredWeb = []string{"PUT /f data\n", "DELETE /f\n"}
	// WantedKV is the wanted key-value workload (read-only serving).
	// It includes an unknown command so the error path and every
	// dispatcher chain head are covered by the wanted trace — without
	// it, the chain-head compare blocks of rarely-used commands look
	// unique to whichever probe touches them first.
	WantedKV = []string{"PING\n", "GET a\n", "EXISTS a\n", "GET b\n", "WHAT\n"}
	// UndesiredKV is the undesired key-value workload: SET (the
	// Figure 8 feature) — traced so its unique blocks are known.
	UndesiredKV = []string{"SET a hello\n", "SET b world\n"}
)

// webSession boots a web server session and returns it.
func webSession(cfg dynacut.WebServerConfig) (*dynacut.Session, *dynacut.WebServerApp, error) {
	app, err := dynacut.BuildWebServer(cfg)
	if err != nil {
		return nil, nil, err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return nil, nil, err
	}
	return sess, app, nil
}

// kvSession boots a key-value store session.
func kvSession(cfg dynacut.KVStoreConfig) (*dynacut.Session, *dynacut.KVStoreApp, error) {
	app, err := dynacut.BuildKVStore(cfg)
	if err != nil {
		return nil, nil, err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return nil, nil, err
	}
	return sess, app, nil
}

// serveAndSnapshot drives the given requests and returns the
// serving-phase coverage.
func serveAndSnapshot(sess *dynacut.Session, reqs []string) (*dynacut.Graph, error) {
	for _, r := range reqs {
		if _, err := sess.Request(r); err != nil {
			return nil, fmt.Errorf("request %q: %w", r, err)
		}
	}
	return sess.SnapshotPhase("serving")
}

// blocksBytes sums block sizes.
func blocksBytes(blocks []coverage.AbsBlock) uint64 {
	var n uint64
	for _, b := range blocks {
		n += b.Size
	}
	return n
}

// fmtKB renders a byte count like the paper's tables.
func fmtKB(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// table renders rows as an aligned text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < width[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
