package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FormatF2 renders the liveness summaries (maps elided to counts).
func FormatF2(rows []Liveness) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Program,
			strconv.Itoa(r.TotalBlocks),
			strconv.Itoa(r.ExecutedBlocks),
			strconv.Itoa(r.InitOnlyBlocks),
			strconv.Itoa(r.UnusedBlocks),
			fmt.Sprintf("%.1f%%", 100*float64(r.UnusedBlocks)/float64(r.TotalBlocks)),
		})
	}
	return table([]string{"program", "totalBB", "executed", "init-only", "unused", "unused%"}, out)
}

// FormatF6 renders the feature-removal overhead breakdown.
func FormatF6(rows []F6Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			strconv.Itoa(r.Processes),
			fmtKB(uint64(r.ImageBytes)),
			fmtDur(r.InsertHandler),
			fmtDur(r.DisableInt3),
			fmtDur(r.Checkpoint),
			fmtDur(r.Restore),
			fmtDur(r.Total()),
		})
	}
	return table([]string{"app", "procs", "image", "sighandler", "int3", "checkpoint", "restore", "total"}, out)
}

// FormatF7 renders the init-removal costs.
func FormatF7(rows []F7Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmtKB(r.CodeSize),
			fmtKB(uint64(r.ImageBytes)),
			strconv.Itoa(r.InitBlocks),
			fmtDur(r.CheckpointRestore),
			fmtDur(r.CodeUpdate),
		})
	}
	return table([]string{"app", "code", "image", "initBBs", "ckpt+restore", "code update"}, out)
}

// FormatF8 renders the throughput timeline as a sparkline table.
func FormatF8(r *F8Result) string {
	var b strings.Builder
	max := 0.0
	for _, p := range r.Baseline {
		if p.Throughput > max {
			max = p.Throughput
		}
	}
	for _, p := range r.WithDynaCut {
		if p.Throughput > max {
			max = p.Throughput
		}
	}
	spark := func(pts []F8Point) string {
		levels := []byte(" .:-=+*#%@")
		var s strings.Builder
		for _, p := range pts {
			idx := 0
			if max > 0 {
				idx = int(p.Throughput / max * float64(len(levels)-1))
			}
			s.WriteByte(levels[idx])
		}
		return s.String()
	}
	fmt.Fprintf(&b, "w/ DynaCut : [%s]\n", spark(r.WithDynaCut))
	fmt.Fprintf(&b, "w/o DynaCut: [%s]\n", spark(r.Baseline))
	fmt.Fprintf(&b, "disable SET @ bucket %d, re-enable @ bucket %d; server survived: %v\n",
		r.DisableAt, r.EnableAt, r.ServerSurvived)
	fmt.Fprintf(&b, "mean latency: %.0f instr (with) vs %.0f instr (baseline); p99 %d vs %d\n",
		r.MeanLatencyWith, r.MeanLatencyBaseline, r.P99LatencyWith, r.P99LatencyBaseline)
	return b.String()
}

// FormatF9 renders the removed-block counts.
func FormatF9(rows []F9Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			strconv.Itoa(r.TotalBB),
			strconv.Itoa(r.ExecutedBB),
			strconv.Itoa(r.RemovedBB),
			fmt.Sprintf("%.1f%%", r.RemovedPct*100),
			fmtKB(r.CodeSize),
			fmtKB(r.InitCodeRemoved),
		})
	}
	return table([]string{"app", "totalBB", "executedBB", "removedBB", "removed%", "code", "init rm"}, out)
}

// FormatT1 renders the CVE mitigation outcomes.
func FormatT1(rows []T1Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.CVE,
			r.Command,
			yesno(r.VanillaCompromised),
			yesno(r.BlockedMitigated),
			yesno(r.ServerAlive),
		})
	}
	return table([]string{"CVE", "command", "vanilla pwned", "mitigated", "server alive"}, out)
}

// FormatPLT renders the PLT-removal results.
func FormatPLT(rows []PLTResult) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			strconv.Itoa(r.TotalPLT),
			strconv.Itoa(r.ExecutedPLT),
			strconv.Itoa(r.RemovedPLT),
			yesno(r.ForkRemoved),
			strings.Join(r.RemovedNames, ","),
		})
	}
	return table([]string{"app", "PLT", "executed", "removed", "fork rm", "removed entries"}, out)
}

// FormatBROP renders the BROP outcome.
func FormatBROP(r *BROPResult) string {
	return fmt.Sprintf(
		"vanilla:   %d successful probe rounds, %d worker respawns\nprotected: %d successful probe rounds (attack dead after first crash)\n",
		r.VanillaRounds, r.VanillaRespawns, r.ProtectedRounds)
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
