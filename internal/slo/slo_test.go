package slo

import (
	"errors"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/fleet"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/loadgen"
	"github.com/dynacut/dynacut/internal/trace"
)

// template is a booted, coverage-profiled web server ready to clone
// into a fleet (same recipe as the fleet suite's).
type template struct {
	m        *kernel.Machine
	pid      int
	port     uint16
	blocks   []coverage.AbsBlock
	redirect uint64
}

func request(m *kernel.Machine, port uint16, req string) string {
	conn, err := m.Dial(port)
	if err != nil {
		return ""
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		return ""
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
	m.Run(20000)
	return string(conn.ReadAll())
}

func bootTemplate(t *testing.T) *template {
	t.Helper()
	app, err := webserv.Build(webserv.Config{Name: "lighttpd", Port: 8080})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := kernel.NewMachine()
	col := trace.NewCollector(app.Config.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	booted := false
	m.SetNudgeFunc(func(pid int, arg uint64) { booted = true })
	if !m.RunUntil(func() bool { return booted }, 10_000_000) {
		t.Fatal("boot: nudge never fired")
	}
	m.Run(10000)

	col.Reset()
	for _, r := range []string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n"} {
		request(m, app.Config.Port, r)
	}
	covWanted := coverage.FromLog(col.SnapshotAndReset(p.Modules(), "wanted"))
	for _, r := range []string{"PUT /f data\n", "DELETE /f\n"} {
		request(m, app.Config.Port, r)
	}
	covUndesired := coverage.FromLog(col.SnapshotAndReset(p.Modules(), "undesired"))
	blocks := core.IdentifyFeatureBlocks(covUndesired, covWanted, app.Config.Name)
	if len(blocks) == 0 {
		t.Fatal("no feature blocks identified")
	}
	sym, err := app.Exe.Symbol("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	m.SetTracer(nil) // replicas run untraced
	return &template{m: m, pid: p.PID(), port: app.Config.Port, blocks: blocks, redirect: sym.Value}
}

const (
	bucketTicks = 100_000
	horizon     = 1_200_000
)

func loadCfg(tpl *template) Config {
	return Config{
		Port:        tpl.port,
		Schedule:    loadgen.NewConstant(10_000),
		Mix:         loadgen.NewMix(loadgen.Request{Payload: "GET /\n"}),
		Horizon:     horizon,
		BucketTicks: bucketTicks,
		// Poll finer than the arrival interval so the last pre-hold
		// response is stamped before the hold boundary: the gap's
		// first bucket then stays completion-free and the observed
		// span covers the full charged downtime.
		PollTicks: 5_000,
	}
}

func fleetCfg(tpl *template, replicas int) fleet.Config {
	return fleet.Config{
		Replicas:     replicas,
		Workers:      2,
		CanaryShards: 1,
		WaveSize:     replicas,
		Core: core.Options{
			RedirectTo: tpl.redirect,
			// The charge cap pins each rewrite's virtual-clock cost:
			// any real dump+restore wall time converts to far more
			// than the cap at this rate, so every rewrite charges
			// exactly MaxChargeTicks (+ its few guest instructions) —
			// a deterministic three-bucket downtime span.
			TicksPerSecond: 2_000_000_000_000,
			MaxChargeTicks: 3 * bucketTicks,
		},
	}
}

func disableWebdav(tpl *template) func(r *fleet.Replica) (core.Stats, error) {
	return func(r *fleet.Replica) (core.Stats, error) {
		return r.Cust.DisableBlocks("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}
}

// TestRolloutUnderLoadCrossChecksSpans is the acceptance figure: a
// staged rollout rewrites every replica while open-loop traffic runs,
// and the downtime each replica's journal entry claims (outcome vclock
// minus intent vclock = the rewrite's machine-clock cost) must match
// the service gap the load generator independently observed, within
// one bucket.
func TestRolloutUnderLoadCrossChecksSpans(t *testing.T) {
	tpl := bootTemplate(t)
	const replicas = 4
	rep, f, err := RolloutUnderLoad(tpl.m, tpl.pid, fleetCfg(tpl, replicas), loadCfg(tpl), disableWebdav(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Rollout.Committed(); got != replicas {
		t.Fatalf("committed = %d, want %d", got, replicas)
	}

	// Conservation across the merged fleet view.
	if got := rep.Served + rep.Errors + rep.Dropped; got != rep.Total {
		t.Fatalf("served %d + errors %d + dropped %d = %d, want Total %d",
			rep.Served, rep.Errors, rep.Dropped, got, rep.Total)
	}
	if rep.Total != replicas*int(horizon/10_000) {
		t.Fatalf("total = %d, want %d scheduled", rep.Total, replicas*horizon/10_000)
	}
	if rep.P50 == 0 || rep.P99 < rep.P50 || rep.P999 < rep.P99 {
		t.Fatalf("percentiles disordered: p50=%d p99=%d p999=%d", rep.P50, rep.P99, rep.P999)
	}
	if rep.ServedPerVtick <= 0 {
		t.Fatal("ServedPerVtick = 0")
	}
	// The backlog requests that fired late after each rewrite carry
	// their full wait as latency: the downtime must be visible in the
	// tail, not absorbed into fire-time accounting.
	if rep.P99 < bucketTicks {
		t.Fatalf("p99 = %d vticks — the rewrite wait is invisible in tail latency", rep.P99)
	}
	// The rewrite made arrivals pile past the in-flight window: the
	// downtime must be visible as dropped requests, not hidden.
	if rep.Dropped == 0 {
		t.Fatal("rollout under load shed no requests — downtime invisible")
	}

	// The cross-check: every replica has both spans and they agree
	// within one bucket.
	if len(rep.JournalSpans) != replicas || len(rep.ObservedSpans) != replicas {
		t.Fatalf("spans: journal %d, observed %d, want %d each",
			len(rep.JournalSpans), len(rep.ObservedSpans), replicas)
	}
	obsByReplica := map[int]Span{}
	for _, s := range rep.ObservedSpans {
		obsByReplica[s.Replica] = s
	}
	for _, js := range rep.JournalSpans {
		os, ok := obsByReplica[js.Replica]
		if !ok {
			t.Fatalf("replica %d: journal span %v but no observed gap", js.Replica, js)
		}
		if !js.Matches(os, bucketTicks) {
			t.Fatalf("replica %d: journal span %d ticks vs observed gap %d ticks — disagree beyond one bucket",
				js.Replica, js.Ticks(), os.Ticks())
		}
		if js.Ticks() < 3*bucketTicks {
			t.Fatalf("replica %d: journal span %d ticks, want >= charge cap %d", js.Replica, js.Ticks(), 3*bucketTicks)
		}
	}

	// The rewrite really landed: every replica now 403s the feature.
	for _, r := range f.Replicas() {
		if got := request(r.Machine, tpl.port, "PUT /f data\n"); !strings.Contains(got, "403") {
			t.Fatalf("replica %d: PUT -> %q, want 403", r.Index, got)
		}
		if got := request(r.Machine, tpl.port, "GET /\n"); !strings.Contains(got, "200") {
			t.Fatalf("replica %d: GET -> %q, want 200", r.Index, got)
		}
	}
}

// TestSteadyStateBaseline: the same load with no rollout has no gap
// buckets, no drops at this rate, and serves the full schedule — the
// baseline row of the experiment table.
func TestSteadyStateBaseline(t *testing.T) {
	tpl := bootTemplate(t)
	f, err := fleet.New(tpl.m, tpl.pid, fleetCfg(tpl, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SteadyState(f, loadCfg(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rollout != nil || len(rep.JournalSpans) != 0 {
		t.Fatal("steady state grew a rollout")
	}
	if rep.Errors != 0 || rep.Dropped != 0 {
		t.Fatalf("steady state errors=%d dropped=%d: %v", rep.Errors, rep.Dropped, rep.Load.Failures)
	}
	if rep.Served != rep.Total {
		t.Fatalf("served %d of %d", rep.Served, rep.Total)
	}
	if len(rep.ObservedSpans) != 0 {
		t.Fatalf("steady state observed gaps: %v", rep.ObservedSpans)
	}
	// The fleet's own machines were untouched (drivers ran on clones).
	for _, r := range f.Replicas() {
		if got := request(r.Machine, tpl.port, "PUT /f data\n"); !strings.Contains(got, "201") {
			t.Fatalf("replica %d no longer pristine: PUT -> %q", r.Index, got)
		}
	}
}

// TestRolloutUnderLoadHaltReleasesDrivers: a rollout whose canary
// fails halts — pending replicas never get an outcome, and the
// harness must release their held drivers when the controller
// returns instead of deadlocking.
func TestRolloutUnderLoadHaltReleasesDrivers(t *testing.T) {
	tpl := bootTemplate(t)
	boom := errors.New("canary sabotage")
	apply := func(r *fleet.Replica) (core.Stats, error) {
		if r.Index == 0 {
			return core.Stats{}, boom
		}
		return disableWebdav(tpl)(r)
	}
	rep, _, err := RolloutUnderLoad(tpl.m, tpl.pid, fleetCfg(tpl, 3), loadCfg(tpl), apply)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rollout.Halted {
		t.Fatal("sabotaged canary did not halt the rollout")
	}
	// Load still ran to the horizon on every replica.
	if len(rep.PerReplica) != 3 {
		t.Fatalf("results = %d", len(rep.PerReplica))
	}
	for i, r := range rep.PerReplica {
		if r == nil || r.Total != horizon/10_000 {
			t.Fatalf("replica %d load incomplete: %+v", i, r)
		}
	}
	if got := rep.Served + rep.Errors + rep.Dropped; got != rep.Total {
		t.Fatalf("conservation broken: %d != %d", got, rep.Total)
	}
}

func TestConfigValidation(t *testing.T) {
	tpl := bootTemplate(t)
	cfg := loadCfg(tpl)
	cfg.Schedule = nil
	if _, _, err := RolloutUnderLoad(tpl.m, tpl.pid, fleetCfg(tpl, 1), cfg, disableWebdav(tpl)); !errors.Is(err, loadgen.ErrNoSchedule) {
		t.Fatalf("err = %v, want ErrNoSchedule", err)
	}
	cfg = loadCfg(tpl)
	cfg.Horizon = 0
	if _, _, err := RolloutUnderLoad(tpl.m, tpl.pid, fleetCfg(tpl, 1), cfg, disableWebdav(tpl)); !errors.Is(err, ErrNoHorizon) {
		t.Fatalf("err = %v, want ErrNoHorizon", err)
	}
}

// TestLivePatchRolloutUnderLoadNearZeroDowntime is the fast path's SLO
// acceptance figure, the counterpart of the cross-check test above: a
// live-patch rollout under the same open-loop load must be invisible
// to the load generator. No observed service gap, journal spans at the
// one-vtick floor, zero dropped requests, and tail latency flush with
// the steady-state baseline — the three-bucket downtime the
// transaction charges simply never happens.
func TestLivePatchRolloutUnderLoadNearZeroDowntime(t *testing.T) {
	tpl := bootTemplate(t)
	const replicas = 4

	// Fleet-template preparation: inject the SIGTRAP handler once so
	// every clone qualifies for the fast path.
	cust, err := core.New(tpl.m, tpl.pid, core.Options{RedirectTo: tpl.redirect})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cust.InstallHandler(); err != nil {
		t.Fatal(err)
	}
	tpl.pid = cust.PID()

	fcfg := fleetCfg(tpl, replicas)
	fcfg.LivePatch = &fleet.LivePatchSpec{Blocks: tpl.blocks, Policy: core.PolicyBlockEntry}
	apply := func(r *fleet.Replica) (core.Stats, error) {
		return r.Cust.DisableBlocksLive("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}

	rep, f, err := RolloutUnderLoad(tpl.m, tpl.pid, fcfg, loadCfg(tpl), apply)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Rollout.Committed(); got != replicas {
		t.Fatalf("committed = %d, want %d", got, replicas)
	}
	for _, o := range rep.Rollout.Outcomes {
		if !o.Stats.LivePatched {
			t.Fatalf("replica %d fell off the fast path: %+v (reason %q)",
				o.Index, o.Stats, o.Stats.FallbackReason)
		}
	}

	// The journal's charged span per replica is the one-vtick floor:
	// the patch lands between scheduler rounds, instantaneous on the
	// virtual clock.
	if len(rep.JournalSpans) != replicas {
		t.Fatalf("journal spans = %d, want %d", len(rep.JournalSpans), replicas)
	}
	for _, s := range rep.JournalSpans {
		if s.Ticks() > bucketTicks/10 {
			t.Fatalf("replica %d journal span %d vticks — the live patch charged real downtime", s.Replica, s.Ticks())
		}
	}
	// The load generator saw nothing: no completion-free bucket run
	// with offered traffic, anywhere in the fleet.
	if len(rep.ObservedSpans) != 0 {
		t.Fatalf("observed service gaps on the fast path: %+v", rep.ObservedSpans)
	}
	// An absent observed gap and a floor-level journal span agree
	// within one bucket by the same Matches rule the transaction
	// figure uses.
	for _, js := range rep.JournalSpans {
		if js.Ticks() >= bucketTicks {
			t.Fatalf("replica %d journal span %d does not agree with a zero observed gap within one bucket",
				js.Replica, js.Ticks())
		}
	}
	if rep.Dropped != 0 {
		t.Fatalf("live-patch rollout shed %d requests, want 0", rep.Dropped)
	}
	if rep.P99 >= bucketTicks {
		t.Fatalf("p99 = %d vticks — the fast path leaked rewrite downtime into tail latency", rep.P99)
	}

	// And the customization actually landed fleet-wide.
	for _, r := range f.Replicas() {
		if got := request(r.Machine, tpl.port, "PUT /f data\n"); !strings.Contains(got, "403") {
			t.Fatalf("replica %d PUT -> %q, want 403", r.Index, got)
		}
	}
}

// TestScrubRolloutUnderLoadBitflipStorm is the silent-corruption SLO
// figure: the live-patch rollout runs with attestation sweeps armed
// while a silent bit-flip storm corrupts replica text — and the load
// generator must not be able to tell. Every flip is repaired in place
// at a quiesced round (no restore, no PID moves), so the storm costs
// no observed service gap, no dropped requests, and leaves tail
// latency flush with the steady-state baseline.
func TestScrubRolloutUnderLoadBitflipStorm(t *testing.T) {
	tpl := bootTemplate(t)
	const replicas = 4

	cust, err := core.New(tpl.m, tpl.pid, core.Options{RedirectTo: tpl.redirect})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cust.InstallHandler(); err != nil {
		t.Fatal(err)
	}
	tpl.pid = cust.PID()

	inj := faultinject.New(7)
	inj.FailTransient(faultinject.SiteTextBitflip, 2, 3)
	fcfg := fleetCfg(tpl, replicas)
	fcfg.LivePatch = &fleet.LivePatchSpec{Blocks: tpl.blocks, Policy: core.PolicyBlockEntry}
	fcfg.Scrub = true
	fcfg.FaultHook = inj
	apply := func(r *fleet.Replica) (core.Stats, error) {
		return r.Cust.DisableBlocksLive("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}

	rep, f, err := RolloutUnderLoad(tpl.m, tpl.pid, fcfg, loadCfg(tpl), apply)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Rollout.Committed(); got != replicas {
		t.Fatalf("committed = %d, want %d", got, replicas)
	}
	if inj.Injected() == 0 {
		t.Fatal("the bit-flip storm never fired")
	}
	repaired, quarantined := 0, 0
	for _, sw := range rep.Rollout.Sweeps {
		repaired += sw.Repaired
		quarantined += sw.Quarantined
	}
	if repaired == 0 {
		t.Fatal("storm fired but no page was repaired")
	}
	if quarantined != 0 {
		t.Fatalf("store-backed repair quarantined %d replicas", quarantined)
	}

	// The storm and its repairs are invisible to the load: no observed
	// service gap, nothing shed, tail latency at the baseline.
	if len(rep.ObservedSpans) != 0 {
		t.Fatalf("observed service gaps under the scrub rollout: %+v", rep.ObservedSpans)
	}
	if rep.Dropped != 0 {
		t.Fatalf("scrub rollout shed %d requests, want 0", rep.Dropped)
	}
	if rep.P99 >= bucketTicks {
		t.Fatalf("p99 = %d vticks — repairs leaked downtime into tail latency", rep.P99)
	}
	t.Logf("storm: %d faults injected, %d pages repaired; p50=%d p99=%d served/vtick=%.5f served=%d/%d dropped=%d",
		inj.Injected(), repaired, rep.P50, rep.P99, rep.ServedPerVtick, rep.Served, rep.Total, rep.Dropped)

	// Disarm and verify: every replica attested clean, still serving,
	// customization intact.
	for _, r := range f.Replicas() {
		r.Machine.SetFaultHook(nil)
	}
	f.Store().SetFaultHook(nil)
	for _, r := range f.Replicas() {
		arep, aerr := r.Cust.Attest()
		if aerr != nil {
			t.Fatalf("replica %d attest: %v", r.Index, aerr)
		}
		if !arep.Clean() {
			t.Fatalf("replica %d silently diverged past the sweeps: %d mismatches", r.Index, len(arep.Mismatches))
		}
		if got := request(r.Machine, tpl.port, "PUT /f data\n"); !strings.Contains(got, "403") {
			t.Fatalf("replica %d PUT -> %q, want 403", r.Index, got)
		}
	}
}
