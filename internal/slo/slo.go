// Package slo measures what customization costs the traffic it
// interrupts. The paper's Figure 8 drives one closed-loop client at
// one guest; a closed-loop client politely absorbs a rewrite's
// downtime as a single slow request, which is precisely the number a
// service-level objective does not care about. This package drives an
// open-loop, schedule-following load generator (internal/loadgen) at
// every replica of a fleet WHILE a real staged rollout — journal,
// canary, waves and all — rewrites them, and reports the figures an
// operator would ask for: p50/p99/p999 latency, requests served per
// vtick, dropped requests, and per-replica downtime spans measured two
// independent ways (the rollout journal's intent/outcome vclock
// stamps vs the service gaps the load generator observed) that must
// agree within one bucket.
//
// # Concurrency model
//
// A kernel.Machine is single-threaded: whoever owns it may step it,
// and nobody else may touch it. During a RolloutUnderLoad each
// replica's machine is owned by its driver goroutine — and the
// controller's workers sample the machine clock around the whole
// apply (journal Ticks = clock delta), so the rollout must not even
// START until every machine's clock is frozen, or driver progress
// between dispatch and rewrite would be billed to the rewrite span.
// The harness therefore sequences ownership in three moves:
//
//  1. Every driver runs its load until the HoldTicks arrival boundary
//     and parks there: the goroutine blocks inside the driver's Hook,
//     the virtual clock frozen at the hold point (wall-clock waiting
//     is invisible on the vtick axis).
//  2. Only when ALL replicas are parked does the controller run. Its
//     workers own the machines exclusively: every rewrite, restore
//     and checkpoint deposit happens while the drivers are provably
//     blocked, and the clock delta it journals is exactly the
//     rewrite's charged cost.
//  3. A replica's driver resumes when the controller's dispatch
//     thread emits that replica's outcome event — after the worker
//     barrier, so the happens-before edge covers the post-commit
//     checkpoint too — or when the rollout returns, whichever is
//     first.
//
// Because every replica parks at the same load-timeline offset and
// resumes exactly its journal span later, the observed service gap
// and the journal span measure the same outage on the same axis.
//
// Known limitation: a halted rollout restores the halted wave's
// committed replicas on the controller thread after their drivers
// were already released; such runs still complete, but those
// replicas' machines should not be inspected concurrently.
package slo

import (
	"errors"
	"fmt"
	"sync"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/fleet"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/loadgen"
)

// Config shapes the load half of a rollout-under-load run. The fleet
// half arrives as a fleet.Config.
type Config struct {
	// Port is the guest service port on every replica.
	Port uint16
	// Schedule dictates arrivals; every replica gets the same schedule
	// (required).
	Schedule loadgen.Schedule
	// Mix supplies payloads for arrivals without their own.
	Mix *loadgen.Mix
	// Horizon is the load run length in vticks (required).
	Horizon uint64
	// HoldTicks is the arrival boundary where each driver pauses to
	// serve its replica's rewrite, pinning the downtime gap to a known
	// spot on the timeline (0 = Horizon/3 rounded down to the bucket
	// grid).
	HoldTicks uint64
	// BucketTicks, RequestBudget, DrainTicks, MaxInFlight, PollTicks
	// pass through to each replica's loadgen.OpenDriver (zeros =
	// that driver's defaults).
	BucketTicks   uint64
	RequestBudget uint64
	DrainTicks    uint64
	MaxInFlight   int
	PollTicks     uint64
}

// Harness errors.
var (
	ErrNoHorizon = errors.New("slo: config needs a horizon")
)

// Span is one downtime interval attributed to a replica. Journal
// spans live on the controller's worker-lane vclock axis (intent
// stamp to outcome stamp); observed spans live on the replica's load
// timeline (offsets from the run start, bucket-quantized). The axes
// differ but the LENGTHS measure the same outage, which is what
// Matches compares.
type Span struct {
	Replica    int
	Start, End uint64
}

// Ticks returns the span length.
func (s Span) Ticks() uint64 { return s.End - s.Start }

// Matches reports whether two spans agree in length within tol ticks
// (the cross-check tolerance is one bucket: the observed span is
// quantized to the bucket grid).
func (s Span) Matches(o Span, tol uint64) bool {
	a, b := s.Ticks(), o.Ticks()
	if a > b {
		a, b = b, a
	}
	return b-a <= tol
}

// Report is the SLO view of one rollout-under-load run.
type Report struct {
	// PerReplica holds each replica's load result in index order;
	// Load is their Merge — the fleet-level traffic view.
	PerReplica []*loadgen.Result
	Load       *loadgen.Result
	// Rollout is the staged rollout's own result and Journal its
	// decoded journal (nil/empty for SteadyState runs).
	Rollout *fleet.RolloutResult
	Journal []fleet.Record
	// JournalSpans are per-replica rewrite spans derived from the
	// journal's intent/outcome vclock stamps; ObservedSpans are the
	// service gaps the load generator saw (longest run of buckets
	// with offered arrivals and zero completions). Replicas without a
	// gap or journal entry are absent.
	JournalSpans  []Span
	ObservedSpans []Span
	// SLO figures over the merged result.
	P50, P99, P999 uint64
	ServedPerVtick float64
	Served         int
	Dropped        int
	Errors         int
	Total          int
}

// harness wires one rollout-under-load run.
type harness struct {
	cfg         Config
	parked      []chan struct{} // closed when replica i's clock is frozen
	outcome     []chan struct{} // closed when replica i's step resolved
	rolloutDone chan struct{}
	parkOnce    []sync.Once
	outOnce     []sync.Once
}

// RolloutUnderLoad builds a fleet from the template, then runs a
// staged rollout of apply across it while every replica serves the
// configured open-loop load, and reports the SLO figures. The fleet
// is returned for post-run inspection (convergence checks, timeline
// export).
func RolloutUnderLoad(template *kernel.Machine, rootPID int, fcfg fleet.Config, cfg Config, apply func(*fleet.Replica) (core.Stats, error)) (*Report, *fleet.Fleet, error) {
	if cfg.Schedule == nil {
		return nil, nil, loadgen.ErrNoSchedule
	}
	if cfg.Horizon == 0 {
		return nil, nil, ErrNoHorizon
	}
	bucket := cfg.BucketTicks
	if bucket == 0 {
		bucket = 100_000
	}
	hold := cfg.HoldTicks
	if hold == 0 {
		hold = cfg.Horizon / 3 / bucket * bucket
	}

	n := fcfg.Replicas
	h := &harness{
		cfg:         cfg,
		parked:      make([]chan struct{}, n),
		outcome:     make([]chan struct{}, n),
		rolloutDone: make(chan struct{}),
		parkOnce:    make([]sync.Once, n),
		outOnce:     make([]sync.Once, n),
	}
	for i := 0; i < n; i++ {
		h.parked[i] = make(chan struct{})
		h.outcome[i] = make(chan struct{})
	}

	// The controller's dispatch thread announces each step outcome
	// after the worker barrier — the earliest point where the rewrite
	// AND the post-commit checkpoint are done with the machine, so the
	// earliest safe moment to release the parked driver.
	userOnStep := fcfg.OnStep
	fcfg.OnStep = func(ev fleet.StepEvent) {
		switch ev.Kind {
		case "outcome", "budget-exhausted", "skip":
			if ev.Replica >= 0 && ev.Replica < n {
				h.outOnce[ev.Replica].Do(func() { close(h.outcome[ev.Replica]) })
			}
		}
		if userOnStep != nil {
			userOnStep(ev)
		}
	}

	f, err := fleet.New(template, rootPID, fcfg)
	if err != nil {
		return nil, nil, err
	}

	results := make([]*loadgen.Result, n)
	loadErrs := make([]error, n)
	var wg sync.WaitGroup
	for i, r := range f.Replicas() {
		wg.Add(1)
		go func(i int, r *fleet.Replica) {
			defer wg.Done()
			d := h.driver(i, r)
			results[i], loadErrs[i] = d.Run(cfg.Horizon)
			if loadErrs[i] != nil {
				loadErrs[i] = fmt.Errorf("slo: replica %d load: %w", i, loadErrs[i])
			}
			// A driver that finished its run without ever reaching the
			// hold boundary (schedule ended early, hold past horizon,
			// validation error) leaves its machine idle — that counts
			// as parked too, or the rollout below would wait forever.
			h.parkOnce[i].Do(func() { close(h.parked[i]) })
		}(i, r)
	}

	// The rollout starts only once every machine's clock is frozen —
	// either parked at the hold boundary or done with its run — so the
	// clock deltas the controller journals are pure rewrite cost.
	for i := 0; i < n; i++ {
		<-h.parked[i]
	}
	ctl := fleet.NewController(f, nil)
	rollout, rerr := ctl.Run(apply)
	close(h.rolloutDone)
	wg.Wait()
	if rerr != nil {
		return nil, f, fmt.Errorf("slo: rollout: %w", rerr)
	}
	if err := errors.Join(loadErrs...); err != nil {
		return nil, f, err
	}

	rep := summarize(results, cfg.Horizon)
	rep.Rollout = rollout
	rep.Journal = ctl.Journal().Records()
	rep.JournalSpans = journalSpans(rep.Journal)
	rep.ObservedSpans = observedSpans(results, bucket)
	return rep, f, nil
}

// SteadyState measures the same load shape against clones of the
// fleet's replicas with no rollout running — the baseline the
// rollout-under-load figures are compared against. The fleet's
// machines are not touched: each driver runs on a private clone.
func SteadyState(f *fleet.Fleet, cfg Config) (*Report, error) {
	if cfg.Schedule == nil {
		return nil, loadgen.ErrNoSchedule
	}
	if cfg.Horizon == 0 {
		return nil, ErrNoHorizon
	}
	bucket := cfg.BucketTicks
	if bucket == 0 {
		bucket = 100_000
	}
	pool := &loadgen.OpenPool{}
	for _, r := range f.Replicas() {
		pool.Drivers = append(pool.Drivers, &loadgen.OpenDriver{
			Machine:       r.Machine.Clone(),
			Port:          cfg.Port,
			Schedule:      cfg.Schedule,
			Mix:           cloneMix(cfg.Mix),
			BucketTicks:   cfg.BucketTicks,
			RequestBudget: cfg.RequestBudget,
			DrainTicks:    cfg.DrainTicks,
			MaxInFlight:   cfg.MaxInFlight,
			PollTicks:     cfg.PollTicks,
		})
	}
	results, err := pool.Run(cfg.Horizon)
	if err != nil {
		return nil, err
	}
	return summarize(results, cfg.Horizon), nil
}

// driver builds replica i's open-loop driver. The Hook is the
// harness's ownership seam: at the first arrival boundary at or past
// the hold point, the driver parks — clock frozen, goroutine blocked
// — and hands the machine to the rollout until its own step resolves
// or the rollout returns.
func (h *harness) driver(i int, r *fleet.Replica) *loadgen.OpenDriver {
	held := false
	return &loadgen.OpenDriver{
		Machine:       r.Machine,
		Port:          h.cfg.Port,
		Schedule:      h.cfg.Schedule,
		Mix:           cloneMix(h.cfg.Mix),
		BucketTicks:   h.cfg.BucketTicks,
		RequestBudget: h.cfg.RequestBudget,
		DrainTicks:    h.cfg.DrainTicks,
		MaxInFlight:   h.cfg.MaxInFlight,
		PollTicks:     h.cfg.PollTicks,
		Observer:      r.Obs,
		Hook: func(offset uint64) error {
			if held || offset < h.holdAt() {
				return nil
			}
			held = true
			h.parkOnce[i].Do(func() { close(h.parked[i]) })
			select {
			case <-h.outcome[i]:
			case <-h.rolloutDone:
			}
			return nil
		},
	}
}

func (h *harness) holdAt() uint64 {
	if h.cfg.HoldTicks != 0 {
		return h.cfg.HoldTicks
	}
	bucket := h.cfg.BucketTicks
	if bucket == 0 {
		bucket = 100_000
	}
	return h.cfg.Horizon / 3 / bucket * bucket
}

// cloneMix gives each driver a private mix cursor so concurrent
// drivers do not race on the shared weighted-round-robin position.
func cloneMix(m *loadgen.Mix) *loadgen.Mix {
	if m == nil {
		return nil
	}
	return m.Clone()
}

// summarize folds per-replica results into the Report's SLO figures.
func summarize(results []*loadgen.Result, horizon uint64) *Report {
	merged := loadgen.Merge(results...)
	rep := &Report{
		PerReplica: results,
		Load:       merged,
		P50:        merged.Latency.Percentile(50),
		P99:        merged.Latency.Percentile(99),
		P999:       merged.Latency.Percentile(99.9),
		Served:     merged.Served(),
		Dropped:    merged.Dropped,
		Errors:     merged.Errors,
		Total:      merged.Total,
	}
	if horizon > 0 {
		rep.ServedPerVtick = float64(merged.Served()) / float64(horizon)
	}
	return rep
}

// journalSpans derives each replica's rewrite span from its final
// outcome record: the controller stamps the intent at the lane start
// and the outcome at lane start + Ticks, so the span length is
// exactly the machine-clock cost of the rewrite, checkpoint deposit
// included.
func journalSpans(records []fleet.Record) []Span {
	last := map[int]Span{}
	var order []int
	for _, r := range records {
		if r.Kind != fleet.RecOutcome {
			continue
		}
		ri := int(r.Replica)
		if _, seen := last[ri]; !seen {
			order = append(order, ri)
		}
		last[ri] = Span{Replica: ri, Start: r.VClock - r.Ticks, End: r.VClock}
	}
	spans := make([]Span, 0, len(order))
	for _, ri := range order {
		spans = append(spans, last[ri])
	}
	return spans
}

// observedSpans finds each replica's longest service gap: the longest
// run of buckets that offered traffic yet completed nothing. A
// replica with no such bucket contributes no span.
func observedSpans(results []*loadgen.Result, bucket uint64) []Span {
	var spans []Span
	for i, r := range results {
		if r == nil {
			continue
		}
		bestStart, bestLen := 0, 0
		runStart, runLen := -1, 0
		for bi, b := range r.Buckets {
			if b.Offered > 0 && b.Responses == 0 {
				if runStart < 0 {
					runStart = bi
				}
				runLen++
				if runLen > bestLen {
					bestStart, bestLen = runStart, runLen
				}
			} else {
				runStart, runLen = -1, 0
			}
		}
		if bestLen > 0 {
			spans = append(spans, Span{
				Replica: i,
				Start:   uint64(bestStart) * bucket,
				End:     uint64(bestStart+bestLen) * bucket,
			})
		}
	}
	return spans
}
