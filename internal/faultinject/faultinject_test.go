package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

func TestFailAtCountsHits(t *testing.T) {
	in := New(1)
	in.FailAt(SiteRestoreProc, 3)
	for i := 1; i <= 5; i++ {
		err := in.Fault(SiteRestoreProc, i)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want injected fault, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: unexpected fault %v", i, err)
		}
	}
	if got := in.Hits(SiteRestoreProc); got != 5 {
		t.Errorf("Hits = %d, want 5", got)
	}
	if got := in.Injected(); got != 1 {
		t.Errorf("Injected = %d, want 1", got)
	}
}

func TestFailTransientWindow(t *testing.T) {
	in := New(1)
	in.FailTransient(PrefixRestore, 2, 2) // hits 2 and 3 fail
	var fails []int
	for i := 1; i <= 5; i++ {
		// Different sites sharing the prefix count into the same plan.
		site := SiteRestoreProc
		if i%2 == 0 {
			site = SiteRestoreVMA
		}
		if in.Fault(site, 0) != nil {
			fails = append(fails, i)
		}
	}
	if len(fails) != 2 || fails[0] != 2 || fails[1] != 3 {
		t.Errorf("failed hits = %v, want [2 3]", fails)
	}
}

func TestHardFaultNeverRecovers(t *testing.T) {
	in := New(1)
	in.FailTransient(SiteHealth, 1, -1)
	for i := 0; i < 4; i++ {
		if in.Fault(SiteHealth, 0) == nil {
			t.Fatalf("hit %d: hard fault did not fire", i+1)
		}
	}
}

func TestPrefixDoesNotMatchOtherSites(t *testing.T) {
	in := New(1)
	in.FailOnce(PrefixDump)
	if err := in.Fault(SiteRestoreProc, 0); err != nil {
		t.Errorf("restore site matched dump prefix: %v", err)
	}
	if err := in.Fault(SiteDumpProc, 0); err == nil {
		t.Error("dump site did not match dump prefix")
	}
}

func TestCorruptImageByteIsDeterministic(t *testing.T) {
	blob := bytes.Repeat([]byte{0xAB}, 256)
	mutate := func(seed int64) []byte {
		in := New(seed)
		in.CorruptImageByte(SitePristine, -1)
		return in.MutateBlob(SitePristine, blob)
	}
	a, b := mutate(42), mutate(42)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(a, blob) {
		t.Error("corruption did not change the blob")
	}
	if c := mutate(43); bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption (suspicious)")
	}
	// The original must never be modified in place.
	if !bytes.Equal(blob, bytes.Repeat([]byte{0xAB}, 256)) {
		t.Error("MutateBlob modified the input slice")
	}
}

func TestCorruptImageByteExactOffset(t *testing.T) {
	blob := make([]byte, 64)
	in := New(7)
	in.CorruptImageByte(SitePristine, 10)
	out := in.MutateBlob(SitePristine, blob)
	for i, bt := range out {
		if (bt != 0) != (i == 10) {
			t.Fatalf("byte %d = %#x", i, bt)
		}
	}
}

func TestTruncateBlob(t *testing.T) {
	blob := make([]byte, 100)
	in := New(7)
	in.TruncateBlob(SitePristine, 33)
	if out := in.MutateBlob(SitePristine, blob); len(out) != 33 {
		t.Errorf("len = %d, want 33", len(out))
	}
	// Plans fire once: a second pass is untouched.
	if out := in.MutateBlob(SitePristine, blob); len(out) != 100 {
		t.Errorf("second pass len = %d, want 100", len(out))
	}
	// Other sites are untouched.
	in2 := New(7)
	in2.TruncateBlob(SitePristine, 10)
	if out := in2.MutateBlob("elsewhere", blob); len(out) != 100 {
		t.Errorf("wrong site mutated: len = %d", len(out))
	}
}

func TestEventLogRecordsDecisions(t *testing.T) {
	in := New(99)
	in.FailOnce(SiteDumpProc)
	in.Fault(SiteDumpProc, 1)
	in.Fault(SiteDumpPageMap, 1)
	evs := in.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if !evs[0].Fail || evs[0].Site != SiteDumpProc {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Fail {
		t.Errorf("event 1 should be a pass: %+v", evs[1])
	}
	if in.Seed() != 99 {
		t.Errorf("Seed = %d", in.Seed())
	}
}
