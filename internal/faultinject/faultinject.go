// Package faultinject is a deterministic fault-injection harness for
// the checkpoint → rewrite → restore transaction. An Injector is
// installed on a kernel.Machine (Machine.SetFaultHook) and consulted
// at named hook sites inside criu.Dump, criu.Restore, crit.Editor and
// core.Customizer; an armed plan makes the nth hit of a site fail
// with ErrInjected, and blob-mutation plans corrupt or truncate a
// serialized image set in flight.
//
// Determinism is the whole point: the seed comes in explicitly
// (New(seed)), nothing touches math/rand's global state, and every
// decision the injector makes is recorded in its event log — so every
// chaos run is exactly reproducible from (seed, plan).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Hook sites. Dump, restore and edit each expose several steps so a
// single fault can be placed before, inside, or after the point of no
// return of the rewrite transaction.
const (
	// SiteDumpProc fires before each process is checkpointed.
	SiteDumpProc = "criu.dump.proc"
	// SiteDumpPageMap fires before a process's pagemap/pages are dumped.
	SiteDumpPageMap = "criu.dump.pagemap"
	// SiteDumpParent fires before a process is dumped incrementally
	// against a parent image (dirty pages only).
	SiteDumpParent = "criu.dump.parent"
	// SiteRestoreProc fires before each process is restored.
	SiteRestoreProc = "criu.restore.proc"
	// SiteRestoreVMA fires before a restored process's VMAs are mapped.
	SiteRestoreVMA = "criu.restore.vma"
	// SiteRestoreParent fires before a delta image's pages are
	// resolved through its parent chain.
	SiteRestoreParent = "criu.restore.parent"
	// SiteRestorePages fires before dumped pages are written back.
	SiteRestorePages = "criu.restore.pages"
	// SiteRestoreFiles fires before descriptors are re-attached.
	SiteRestoreFiles = "criu.restore.files"
	// SiteEditWrite fires before each image memory write (crit).
	SiteEditWrite = "crit.edit.write"
	// SiteEditUnmap fires before each image unmap (crit).
	SiteEditUnmap = "crit.edit.unmap"
	// SiteHealth fires at the start of the post-restore health check.
	SiteHealth = "core.health"
	// SitePristine is the blob-mutation site for the serialized
	// pre-edit checkpoint (models tmpfs image corruption).
	SitePristine = "core.pristine"
	// SiteInjectArm fires between mapping the handler library and
	// arming its sigaction — the partial-failure window where a fault
	// would otherwise leak the injected mapping into the image.
	SiteInjectArm = "core.inject.arm"

	// Supervisor hook sites (internal/supervise): each fires at the
	// start of one closed-loop action, so chaos runs can kill any rung
	// of the heal → re-enable → disarm → restore ladder.
	//
	// SiteSuperviseHeal fires before false removals are adopted.
	SiteSuperviseHeal = "supervise.heal"
	// SiteSuperviseCanary fires before a scheduled canary probe runs.
	SiteSuperviseCanary = "supervise.canary"
	// SiteSuperviseReenable fires before a feature is force re-enabled
	// (breaker trip / ladder rung 2).
	SiteSuperviseReenable = "supervise.reenable"
	// SiteSuperviseDisarm fires before the everything-back-on rung
	// (EnableAll + patching disarmed).
	SiteSuperviseDisarm = "supervise.disarm"
	// SiteSuperviseRestore fires before the last-good pristine images
	// are restored (the ladder's final rung).
	SiteSuperviseRestore = "supervise.restore"

	// Fleet hook sites (internal/fleet): each fires at the start of
	// one fleet-level action, so chaos runs can break replica spawn,
	// any rollout wave, or the halt-and-roll-back path itself.
	//
	// SiteFleetClone fires before a replica is cloned from the
	// template guest.
	SiteFleetClone = "fleet.clone"
	// SiteFleetWave fires before a replica's rewrite is applied during
	// a rollout wave (canary included); detail is the replica index.
	SiteFleetWave = "fleet.wave"
	// SiteFleetRollback fires before a halted rollout restores a
	// replica to its pristine checkpoint; detail is the replica index.
	SiteFleetRollback = "fleet.rollback"
	// SiteFleetJournalAppend fires before a record is appended to the
	// rollout journal; an injected fault models a torn write (the
	// frame is half-written) and kills the controller. detail is the
	// record kind.
	SiteFleetJournalAppend = "fleet.journal.append"
	// SiteFleetLeaseExpire fires when a worker leases a rollout step;
	// an injected fault kills that worker mid-lease, so the step must
	// be recovered by lease expiry and requeue. detail is the replica
	// index.
	SiteFleetLeaseExpire = "fleet.lease.expire"
	// SiteFleetControllerCrash fires at every journal record boundary
	// inside the rollout controller; an injected fault kills the
	// controller there (Run returns ErrControllerCrashed), leaving the
	// journal for a later ResumeController. detail identifies the
	// boundary (a crashAt* constant in internal/fleet).
	SiteFleetControllerCrash = "fleet.controller.crash"

	// Live-patch hook sites (internal/core's DisableBlocksLive): the
	// fast path never kills the guest, so an injected fault here must
	// unwind any bytes already written and fall back to the checkpoint
	// transaction — the property the livepatch chaos suite checks.
	//
	// SiteLivePatchQuiesce fires before the quiescence loop starts;
	// detail is the root PID.
	SiteLivePatchQuiesce = "core.livepatch.quiesce"
	// SiteLivePatchPatch fires before each block's bytes are patched
	// in the running VMA; detail is the target PID.
	SiteLivePatchPatch = "core.livepatch.patch"
	// SiteLivePatchCommit fires before the patched bytes are committed
	// into the customizer's bookkeeping; detail is the block count.
	SiteLivePatchCommit = "core.livepatch.commit"

	// Silent-corruption hook sites (attestation / anti-entropy). These
	// invert the usual contract: the caller treats a non-nil return not
	// as a failure to surface but as an instruction to corrupt state
	// *silently* and carry on as if nothing happened. No error
	// propagates — the corruption is only observable if the attestation
	// sweep catches it, which is exactly the invariant the chaos suite
	// proves.
	//
	// SiteTextBitflip fires at the start of an attestation hash pass;
	// when armed, the caller flips one bit in a live text page and
	// continues. detail is the root PID.
	SiteTextBitflip = "kernel.text.bitflip"
	// SiteStoreRot fires on each page-blob read from the
	// content-addressed PageStore; when armed, the caller rots the
	// stored blob in place (the rot is persistent) and continues. The
	// read-path re-hash then reports ErrStoreCorrupt. detail is the
	// first key byte.
	SiteStoreRot = "criu.store.rot"
	// SiteAttestSkew fires when the fleet sweep collects a replica's
	// live attestation root; when armed, the *collected* root is
	// corrupted in flight — the replica's text is fine, its report is
	// not. The oracle-authoritative re-attest must clear it. detail is
	// the replica index.
	SiteAttestSkew = "fleet.attest.skew"

	// SiteAttestRepair fires before each in-place page repair write.
	// Unlike the silent sites above this one is loud: an injected fault
	// fails that repair attempt, driving the retry budget and, when
	// exhausted, the quarantine path. detail is the target PID.
	SiteAttestRepair = "core.attest.repair"
	// SiteSuperviseScrub fires before the supervisor's attest-and-scrub
	// ladder rung runs (between disarm and pristine restore).
	SiteSuperviseScrub = "supervise.scrub"
)

// Step-prefix groups: FailDumpAtStep / FailRestoreAtStep count every
// site sharing the prefix.
const (
	PrefixDump      = "criu.dump."
	PrefixRestore   = "criu.restore."
	PrefixEdit      = "crit.edit."
	PrefixSupervise = "supervise."
	PrefixFleet     = "fleet."
	PrefixLivePatch = "core.livepatch."
	PrefixStore     = "criu.store."
)

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = errors.New("faultinject: injected fault")

// Event records one injector decision, for reproducibility audits.
type Event struct {
	Site string // hook site that was hit
	Hit  int    // per-plan hit count at the time
	Fail bool   // whether a fault was injected
}

// plan arms failures for sites matching a prefix: the hits numbered
// [at, at+times) fail; times < 0 means every hit from at on fails.
type plan struct {
	prefix string
	at     int
	times  int
	count  int
}

func (pl *plan) active() bool {
	return pl.times < 0 || pl.count < pl.at+pl.times
}

// blobPlan arms one mutation of a serialized blob at a site.
type blobPlan struct {
	site     string
	truncate bool
	arg      int // byte offset (corrupt) or kept length (truncate); < 0 = seeded random
	done     bool
}

// Injector is a deterministic fault injector. It implements the
// kernel.FaultHook and kernel.BlobMutator interfaces. The zero value
// is not usable; construct with New.
type Injector struct {
	mu       sync.Mutex
	seed     int64
	rng      *rand.Rand
	plans    []*plan
	blobs    []*blobPlan
	hits     map[string]int
	log      []Event
	reporter func(site string, hit int, injected bool)
}

// New creates an injector whose random choices (corruption offsets,
// truncation lengths) derive solely from seed.
func New(seed int64) *Injector {
	return &Injector{
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
		hits: map[string]int{},
	}
}

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// SetReporter installs a callback invoked for every injected fault
// (blob mutations included) — the kernel.FaultReporter contract. A
// machine with both this injector and an observer installed wires the
// callback so each injection lands in the trace as a fault event,
// making chaos runs self-explaining. nil disables reporting.
func (in *Injector) SetReporter(f func(site string, hit int, injected bool)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reporter = f
}

// report invokes the reporter for an injected fault. Caller holds
// in.mu; the callback only feeds the observer, which never calls back
// into the injector, so holding the lock is safe and keeps the event
// order identical to the decision log.
func (in *Injector) report(site string, hit int) {
	if in.reporter != nil {
		in.reporter(site, hit, true)
	}
}

// FailAt arms the nth (1-based) hit of any site matching sitePrefix
// to fail. An exact site name is a valid prefix of itself.
func (in *Injector) FailAt(sitePrefix string, n int) {
	in.FailTransient(sitePrefix, n, 1)
}

// FailOnce arms the first hit of sitePrefix to fail.
func (in *Injector) FailOnce(sitePrefix string) { in.FailAt(sitePrefix, 1) }

// FailTransient arms hits [n, n+times) of sitePrefix to fail; later
// hits succeed again — the transient-fault shape MaxAttempts retries
// are built for. times < 0 fails every hit from n on (a hard fault).
func (in *Injector) FailTransient(sitePrefix string, n, times int) {
	if n < 1 {
		n = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans = append(in.plans, &plan{prefix: sitePrefix, at: n, times: times})
}

// FailDumpAtStep arms the nth step of the whole dump phase.
func (in *Injector) FailDumpAtStep(n int) { in.FailAt(PrefixDump, n) }

// FailRestoreAtStep arms the nth step of the whole restore phase
// (cumulative across processes and per-process sub-steps).
func (in *Injector) FailRestoreAtStep(n int) { in.FailAt(PrefixRestore, n) }

// FailEditAtStep arms the nth image-edit operation.
func (in *Injector) FailEditAtStep(n int) { in.FailAt(PrefixEdit, n) }

// FailPageMap arms the first pagemap dump to fail.
func (in *Injector) FailPageMap() { in.FailOnce(SiteDumpPageMap) }

// CorruptImageByte arms a one-byte flip of the blob passing through
// site. off < 0 picks a seeded random offset.
func (in *Injector) CorruptImageByte(site string, off int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blobs = append(in.blobs, &blobPlan{site: site, arg: off})
}

// TruncateBlob arms a truncation of the blob passing through site to
// n bytes. n < 0 picks a seeded random cut point.
func (in *Injector) TruncateBlob(site string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blobs = append(in.blobs, &blobPlan{site: site, truncate: true, arg: n})
}

// Fault implements the fault hook: it records the hit and returns a
// non-nil error when an armed plan matches.
func (in *Injector) Fault(site string, detail int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[site]++
	for _, pl := range in.plans {
		if !strings.HasPrefix(site, pl.prefix) {
			continue
		}
		pl.count++
		if pl.count >= pl.at && pl.active() {
			in.log = append(in.log, Event{Site: site, Hit: pl.count, Fail: true})
			in.report(site, pl.count)
			return fmt.Errorf("%w: %s (hit %d, detail %d, seed %d)",
				ErrInjected, site, pl.count, detail, in.seed)
		}
	}
	in.log = append(in.log, Event{Site: site, Hit: in.hits[site]})
	return nil
}

// MutateBlob implements the blob-mutation hook: armed plans for site
// are applied (once each) to a copy of blob.
func (in *Injector) MutateBlob(site string, blob []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := blob
	for _, bp := range in.blobs {
		if bp.done || bp.site != site || len(out) == 0 {
			continue
		}
		bp.done = true
		mutated := append([]byte(nil), out...)
		if bp.truncate {
			n := bp.arg
			if n < 0 || n >= len(mutated) {
				n = in.rng.Intn(len(mutated))
			}
			mutated = mutated[:n]
		} else {
			off := bp.arg
			if off < 0 || off >= len(mutated) {
				off = in.rng.Intn(len(mutated))
			}
			// Flip a random bit so the byte always changes.
			mutated[off] ^= byte(1 << in.rng.Intn(8))
		}
		in.log = append(in.log, Event{Site: site, Hit: 1, Fail: true})
		in.report(site, 1)
		out = mutated
	}
	return out
}

// Hits returns how many times site was consulted.
func (in *Injector) Hits(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Injected returns how many faults (including blob mutations) fired.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, ev := range in.log {
		if ev.Fail {
			n++
		}
	}
	return n
}

// Events returns the decision log in order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.log...)
}
