package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decode errors. ErrBadOpcode is the decode-time analogue of an
// illegal-instruction fault; the kernel converts it to SIGSEGV.
var (
	ErrBadOpcode  = errors.New("isa: undefined opcode")
	ErrTruncated  = errors.New("isa: truncated instruction")
	ErrBadOperand = errors.New("isa: operand out of range")
)

// Encode appends the encoding of in to dst and returns the extended
// slice. It validates register operands.
func Encode(dst []byte, in Inst) ([]byte, error) {
	if !in.A.Valid() || !in.B.Valid() {
		return dst, fmt.Errorf("%w: %v", ErrBadOperand, in)
	}
	switch in.Op {
	case OpNOP, OpRET, OpINT3, OpHLT, OpSYS:
		return append(dst, byte(in.Op)), nil
	case OpJMPr, OpCALLr, OpPUSH, OpPOP:
		return append(dst, byte(in.Op), byte(in.A)), nil
	case OpMOVrr, OpADDrr, OpSUBrr, OpMULrr, OpDIVrr, OpANDrr,
		OpORrr, OpXORrr, OpSHLrr, OpSHRrr, OpCMPrr:
		return append(dst, byte(in.Op), byte(in.A), byte(in.B)), nil
	case OpSHLri, OpSHRri:
		if in.Imm < 0 || in.Imm > 63 {
			return dst, fmt.Errorf("%w: shift amount %d", ErrBadOperand, in.Imm)
		}
		return append(dst, byte(in.Op), byte(in.A), byte(in.Imm)), nil
	case OpJMP, OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE, OpCALL:
		if err := checkImm32(in.Imm); err != nil {
			return dst, err
		}
		dst = append(dst, byte(in.Op))
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm))), nil
	case OpADDri, OpSUBri, OpMULri, OpANDri, OpORri, OpXORri, OpCMPri, OpLEA:
		if err := checkImm32(in.Imm); err != nil {
			return dst, err
		}
		dst = append(dst, byte(in.Op), byte(in.A))
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm))), nil
	case OpLOAD, OpSTORE, OpLOADB, OpSTOREB:
		if err := checkImm32(in.Imm); err != nil {
			return dst, err
		}
		dst = append(dst, byte(in.Op), byte(in.A), byte(in.B))
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm))), nil
	case OpMOVri:
		dst = append(dst, byte(in.Op), byte(in.A))
		return binary.LittleEndian.AppendUint64(dst, uint64(in.Imm)), nil
	default:
		return dst, fmt.Errorf("%w: 0x%02x", ErrBadOpcode, byte(in.Op))
	}
}

func checkImm32(v int64) error {
	if v < -(1<<31) || v >= 1<<31 {
		return fmt.Errorf("%w: immediate %d does not fit in 32 bits", ErrBadOperand, v)
	}
	return nil
}

// Decode decodes the instruction at the start of code. The returned
// Inst has Size set to the number of bytes consumed.
func Decode(code []byte) (Inst, error) {
	if len(code) == 0 {
		return Inst{}, ErrTruncated
	}
	op := Opcode(code[0])
	n := op.Length()
	if n == 0 {
		return Inst{}, fmt.Errorf("%w: 0x%02x", ErrBadOpcode, code[0])
	}
	if len(code) < n {
		return Inst{}, fmt.Errorf("%w: need %d bytes for %s, have %d",
			ErrTruncated, n, op.Name(), len(code))
	}
	in := Inst{Op: op, Size: n}
	switch op {
	case OpNOP, OpRET, OpINT3, OpHLT, OpSYS:
	case OpJMPr, OpCALLr, OpPUSH, OpPOP:
		in.A = Register(code[1])
	case OpMOVrr, OpADDrr, OpSUBrr, OpMULrr, OpDIVrr, OpANDrr,
		OpORrr, OpXORrr, OpSHLrr, OpSHRrr, OpCMPrr:
		in.A, in.B = Register(code[1]), Register(code[2])
	case OpSHLri, OpSHRri:
		in.A = Register(code[1])
		in.Imm = int64(code[2])
	case OpJMP, OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE, OpCALL:
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[1:5])))
	case OpADDri, OpSUBri, OpMULri, OpANDri, OpORri, OpXORri, OpCMPri, OpLEA:
		in.A = Register(code[1])
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[2:6])))
	case OpLOAD, OpSTORE, OpLOADB, OpSTOREB:
		in.A, in.B = Register(code[1]), Register(code[2])
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[3:7])))
	case OpMOVri:
		in.A = Register(code[1])
		in.Imm = int64(binary.LittleEndian.Uint64(code[2:10]))
	}
	if !in.A.Valid() || !in.B.Valid() {
		return Inst{}, fmt.Errorf("%w: register byte out of range in %s",
			ErrBadOperand, op.Name())
	}
	return in, nil
}

// MustEncode is Encode for toolchain-internal instruction streams that
// are known valid; it panics on error. Use only with constant inputs.
func MustEncode(dst []byte, in Inst) []byte {
	out, err := Encode(dst, in)
	if err != nil {
		panic(err)
	}
	return out
}

// Disassemble decodes the byte range as a linear instruction stream
// starting at virtual address base, stopping at the first undecodable
// byte. It returns the decoded instructions and their addresses.
func Disassemble(code []byte, base uint64) ([]Inst, []uint64) {
	var (
		insts []Inst
		addrs []uint64
	)
	off := 0
	for off < len(code) {
		in, err := Decode(code[off:])
		if err != nil {
			break
		}
		insts = append(insts, in)
		addrs = append(addrs, base+uint64(off))
		off += in.Size
	}
	return insts, addrs
}
