// Package isa defines the virtual instruction set executed by the
// simulated kernel (internal/kernel) and produced by the assembler
// (internal/asm).
//
// The ISA is deliberately x86-flavoured where DynaCut depends on x86
// properties: instructions are variable length, and INT3 (0xCC), NOP
// (0x90) and RET (0xC3) are single-byte opcodes, so a process rewriter
// can overwrite exactly one byte to turn the head of a basic block
// into a breakpoint, and can wipe arbitrary byte ranges without
// worrying about alignment.
//
// Registers: 16 general-purpose 64-bit registers r0..r15.
// Conventions (enforced only by the toolchain, not the hardware):
//
//	r0       return value and syscall number
//	r1..r5   arguments
//	r13      callee-saved scratch used by the PIC prologue
//	r14      PIC base register inside shared libraries
//	r15      stack pointer (SP); PUSH/POP/CALL/RET use it implicitly
//
// Flags: Z (zero) and L (signed less-than), set by CMP only.
// Branch offsets (rel32) are relative to the address of the *next*
// instruction, as on x86.
package isa

import "fmt"

// Register names the 16 general-purpose registers.
type Register uint8

// NumRegisters is the size of the general-purpose register file.
const NumRegisters = 16

// SP is the conventional stack pointer register.
const SP Register = 15

// String returns the assembler spelling of the register ("r0".."r15").
func (r Register) String() string {
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether the register index is within the register file.
func (r Register) Valid() bool {
	return r < NumRegisters
}

// Opcode is the first byte of every instruction encoding.
type Opcode uint8

// Opcode space. Single-byte instructions reuse the x86 byte values the
// paper relies on (0xCC, 0x90, 0xC3) so that rewritten images look
// familiar in hex dumps.
const (
	OpMOVri Opcode = 0x01 // MOV  reg, imm64          [op reg imm64]      10 bytes
	OpMOVrr Opcode = 0x02 // MOV  dst, src            [op dst src]         3 bytes
	OpLOAD  Opcode = 0x03 // LOAD dst, [base+disp32]  [op dst base d32]    7 bytes
	OpSTORE Opcode = 0x04 // STORE [base+disp32], src [op src base d32]    7 bytes
	OpADDrr Opcode = 0x05 // ADD dst, src             [op dst src]         3 bytes
	OpSUBrr Opcode = 0x06
	OpMULrr Opcode = 0x07
	OpDIVrr Opcode = 0x08 // unsigned divide; divide by zero raises #DE
	OpANDrr Opcode = 0x09
	OpORrr  Opcode = 0x0A
	OpXORrr Opcode = 0x0B
	OpSHLrr Opcode = 0x0C
	OpSHRrr Opcode = 0x0D
	OpSYS   Opcode = 0x0F // SYSCALL                  [op]                 1 byte

	OpADDri Opcode = 0x10 // ADD dst, imm32 (sign-extended) [op dst i32]   6 bytes
	OpSUBri Opcode = 0x11
	OpMULri Opcode = 0x12
	OpANDri Opcode = 0x13
	OpORri  Opcode = 0x14
	OpXORri Opcode = 0x15
	OpSHLri Opcode = 0x16 // SHL dst, imm8            [op dst i8]          3 bytes
	OpSHRri Opcode = 0x17

	OpCMPrr Opcode = 0x20 // CMP a, b                 [op a b]             3 bytes
	OpCMPri Opcode = 0x21 // CMP a, imm32             [op a i32]           6 bytes

	OpJMP  Opcode = 0x30 // JMP rel32                  [op rel32]           5 bytes
	OpJE   Opcode = 0x31
	OpJNE  Opcode = 0x32
	OpJL   Opcode = 0x33
	OpJG   Opcode = 0x34
	OpJLE  Opcode = 0x35
	OpJGE  Opcode = 0x36
	OpJMPr Opcode = 0x38 // JMP reg (indirect)        [op reg]             2 bytes

	OpCALL  Opcode = 0x40 // CALL rel32               [op rel32]           5 bytes
	OpCALLr Opcode = 0x41 // CALL reg (indirect)      [op reg]             2 bytes

	OpPUSH Opcode = 0x50 // PUSH reg                  [op reg]             2 bytes
	OpPOP  Opcode = 0x51 // POP reg                   [op reg]             2 bytes

	OpLEA Opcode = 0x70 // LEA dst, rel32             [op dst rel32]       6 bytes
	//                      dst = address of next instruction + rel32
	//                      (RIP-relative; the PIC addressing primitive)

	OpLOADB  Opcode = 0x71 // LOADB dst, [base+disp32]  zero-extends 1 byte, 7 bytes
	OpSTOREB Opcode = 0x72 // STOREB [base+disp32], src  stores low byte,    7 bytes

	OpNOP  Opcode = 0x90 // 1 byte
	OpRET  Opcode = 0xC3 // 1 byte
	OpINT3 Opcode = 0xCC // 1 byte; raises SIGTRAP
	OpHLT  Opcode = 0xF4 // 1 byte; raises SIGSEGV (executing junk/wiped memory)
)

var opNames = map[Opcode]string{
	OpMOVri: "mov", OpMOVrr: "mov", OpLOAD: "load", OpSTORE: "store",
	OpADDrr: "add", OpSUBrr: "sub", OpMULrr: "mul", OpDIVrr: "div",
	OpANDrr: "and", OpORrr: "or", OpXORrr: "xor", OpSHLrr: "shl", OpSHRrr: "shr",
	OpSYS:   "syscall",
	OpADDri: "add", OpSUBri: "sub", OpMULri: "mul",
	OpANDri: "and", OpORri: "or", OpXORri: "xor", OpSHLri: "shl", OpSHRri: "shr",
	OpCMPrr: "cmp", OpCMPri: "cmp",
	OpJMP: "jmp", OpJE: "je", OpJNE: "jne", OpJL: "jl", OpJG: "jg",
	OpJLE: "jle", OpJGE: "jge", OpJMPr: "jmp",
	OpCALL: "call", OpCALLr: "call",
	OpPUSH: "push", OpPOP: "pop",
	OpLEA: "lea", OpLOADB: "loadb", OpSTOREB: "storeb",
	OpNOP: "nop", OpRET: "ret", OpINT3: "int3", OpHLT: "hlt",
}

// Name returns the assembler mnemonic for the opcode, or "db 0x??" for
// bytes that do not decode to an instruction.
func (op Opcode) Name() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("db 0x%02x", uint8(op))
}

// Valid reports whether the byte is a defined opcode.
func (op Opcode) Valid() bool {
	_, ok := opNames[op]
	return ok
}

// Length returns the encoded length in bytes of an instruction that
// starts with this opcode, or 0 if the opcode is undefined.
func (op Opcode) Length() int {
	switch op {
	case OpNOP, OpRET, OpINT3, OpHLT, OpSYS:
		return 1
	case OpJMPr, OpCALLr, OpPUSH, OpPOP:
		return 2
	case OpMOVrr, OpADDrr, OpSUBrr, OpMULrr, OpDIVrr,
		OpANDrr, OpORrr, OpXORrr, OpSHLrr, OpSHRrr,
		OpCMPrr, OpSHLri, OpSHRri:
		return 3
	case OpJMP, OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE, OpCALL:
		return 5
	case OpADDri, OpSUBri, OpMULri, OpANDri, OpORri, OpXORri,
		OpCMPri, OpLEA:
		return 6
	case OpLOAD, OpSTORE, OpLOADB, OpSTOREB:
		return 7
	case OpMOVri:
		return 10
	default:
		return 0
	}
}

// IsBranch reports whether the opcode ends a basic block: any control
// transfer, trap, halt, or syscall boundary. The coverage tracer and
// the static disassembler both use this as the block-termination rule.
func (op Opcode) IsBranch() bool {
	switch op {
	case OpJMP, OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE,
		OpJMPr, OpCALL, OpCALLr, OpRET, OpINT3, OpHLT:
		return true
	default:
		return false
	}
}

// IsCond reports whether the opcode is a conditional branch (has a
// fall-through successor in the CFG).
func (op Opcode) IsCond() bool {
	switch op {
	case OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE:
		return true
	default:
		return false
	}
}

// Inst is one decoded instruction.
type Inst struct {
	Op   Opcode
	A    Register // first register operand (dst, or src for STORE)
	B    Register // second register operand (src, or base for LOAD/STORE)
	Imm  int64    // immediate / displacement / rel32 (sign-extended)
	Size int      // encoded length in bytes
}

// Target returns the absolute branch target of a direct control
// transfer located at addr, and whether the instruction has one.
func (in Inst) Target(addr uint64) (uint64, bool) {
	switch in.Op {
	case OpJMP, OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE, OpCALL:
		return addr + uint64(in.Size) + uint64(in.Imm), true
	default:
		return 0, false
	}
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case OpNOP, OpRET, OpINT3, OpHLT, OpSYS:
		return in.Op.Name()
	case OpMOVri:
		return fmt.Sprintf("mov %s, %d", in.A, in.Imm)
	case OpMOVrr, OpADDrr, OpSUBrr, OpMULrr, OpDIVrr, OpANDrr,
		OpORrr, OpXORrr, OpSHLrr, OpSHRrr, OpCMPrr:
		return fmt.Sprintf("%s %s, %s", in.Op.Name(), in.A, in.B)
	case OpADDri, OpSUBri, OpMULri, OpANDri, OpORri, OpXORri,
		OpCMPri, OpSHLri, OpSHRri:
		return fmt.Sprintf("%s %s, %d", in.Op.Name(), in.A, in.Imm)
	case OpLOAD, OpLOADB:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op.Name(), in.A, in.B, in.Imm)
	case OpSTORE, OpSTOREB:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op.Name(), in.B, in.Imm, in.A)
	case OpJMP, OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE, OpCALL:
		return fmt.Sprintf("%s %+d", in.Op.Name(), in.Imm)
	case OpJMPr, OpCALLr:
		return fmt.Sprintf("%s %s", in.Op.Name(), in.A)
	case OpPUSH, OpPOP:
		return fmt.Sprintf("%s %s", in.Op.Name(), in.A)
	case OpLEA:
		return fmt.Sprintf("lea %s, %+d", in.A, in.Imm)
	default:
		return in.Op.Name()
	}
}
