package isa

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeLengths(t *testing.T) {
	tests := []struct {
		op   Opcode
		want int
	}{
		{OpINT3, 1}, {OpNOP, 1}, {OpRET, 1}, {OpHLT, 1}, {OpSYS, 1},
		{OpPUSH, 2}, {OpPOP, 2}, {OpJMPr, 2}, {OpCALLr, 2},
		{OpMOVrr, 3}, {OpADDrr, 3}, {OpCMPrr, 3}, {OpSHLri, 3},
		{OpJMP, 5}, {OpCALL, 5}, {OpJE, 5},
		{OpADDri, 6}, {OpCMPri, 6}, {OpLEA, 6},
		{OpLOAD, 7}, {OpSTORE, 7}, {OpLOADB, 7}, {OpSTOREB, 7},
		{OpMOVri, 10},
		{Opcode(0xFF), 0}, {Opcode(0x00), 0},
	}
	for _, tt := range tests {
		if got := tt.op.Length(); got != tt.want {
			t.Errorf("Length(%s/0x%02x) = %d, want %d", tt.op.Name(), byte(tt.op), got, tt.want)
		}
	}
}

func TestINT3IsOneByte0xCC(t *testing.T) {
	// The paper's core mechanism: a single 0xCC byte blocks a basic block.
	b, err := Encode(nil, Inst{Op: OpINT3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0xCC}) {
		t.Fatalf("INT3 encoded as % x, want CC", b)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Inst{
		{Op: OpMOVri, A: 3, Imm: -1},
		{Op: OpMOVri, A: 0, Imm: math.MaxInt64},
		{Op: OpMOVrr, A: 1, B: 2},
		{Op: OpLOAD, A: 4, B: 15, Imm: -8},
		{Op: OpSTORE, A: 5, B: 15, Imm: 16},
		{Op: OpLOADB, A: 4, B: 6, Imm: 1},
		{Op: OpSTOREB, A: 4, B: 6, Imm: 0},
		{Op: OpADDrr, A: 1, B: 1},
		{Op: OpDIVrr, A: 2, B: 3},
		{Op: OpADDri, A: 7, Imm: -2147483648},
		{Op: OpCMPri, A: 7, Imm: 2147483647},
		{Op: OpSHLri, A: 9, Imm: 63},
		{Op: OpJMP, Imm: -5},
		{Op: OpJE, Imm: 1024},
		{Op: OpCALL, Imm: 0},
		{Op: OpCALLr, A: 11},
		{Op: OpJMPr, A: 12},
		{Op: OpPUSH, A: 15},
		{Op: OpPOP, A: 0},
		{Op: OpLEA, A: 8, Imm: -64},
		{Op: OpSYS},
		{Op: OpRET},
		{Op: OpNOP},
		{Op: OpINT3},
		{Op: OpHLT},
	}
	for _, in := range tests {
		enc, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		if len(enc) != in.Op.Length() {
			t.Errorf("Encode(%v) = %d bytes, want %d", in, len(enc), in.Op.Length())
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		want := in
		want.Size = in.Op.Length()
		if got != want {
			t.Errorf("round trip %v -> %v", want, got)
		}
	}
}

func TestEncodeRejectsBadOperands(t *testing.T) {
	tests := []Inst{
		{Op: OpMOVrr, A: 16},
		{Op: OpMOVrr, B: 200},
		{Op: OpADDri, A: 1, Imm: 1 << 40},
		{Op: OpJMP, Imm: -(1 << 40)},
		{Op: OpSHLri, A: 1, Imm: 64},
		{Op: OpSHLri, A: 1, Imm: -1},
		{Op: Opcode(0xEE)},
	}
	for _, in := range tests {
		if _, err := Encode(nil, in); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Error("Decode(0xFF) succeeded, want bad opcode")
	}
	// Truncated MOVri.
	if _, err := Decode([]byte{byte(OpMOVri), 0, 1, 2}); err == nil {
		t.Error("Decode(truncated) succeeded")
	}
	// Register byte out of range.
	if _, err := Decode([]byte{byte(OpPUSH), 99}); err == nil {
		t.Error("Decode(push r99) succeeded")
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: OpJMP, Imm: -5, Size: 5}
	if tgt, ok := in.Target(100); !ok || tgt != 100 {
		t.Errorf("Target = %d,%v want 100,true (self-loop)", tgt, ok)
	}
	in = Inst{Op: OpCALL, Imm: 11, Size: 5}
	if tgt, ok := in.Target(0x400000); !ok || tgt != 0x400010 {
		t.Errorf("CALL target = %#x,%v", tgt, ok)
	}
	if _, ok := (Inst{Op: OpRET, Size: 1}).Target(0); ok {
		t.Error("RET reported a direct target")
	}
	if _, ok := (Inst{Op: OpJMPr, A: 1, Size: 2}).Target(0); ok {
		t.Error("indirect JMP reported a direct target")
	}
}

func TestIsBranchAndIsCond(t *testing.T) {
	branches := []Opcode{OpJMP, OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE,
		OpJMPr, OpCALL, OpCALLr, OpRET, OpINT3, OpHLT}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s not IsBranch", op.Name())
		}
	}
	for _, op := range []Opcode{OpMOVri, OpADDrr, OpSYS, OpNOP, OpPUSH} {
		if op.IsBranch() {
			t.Errorf("%s reported IsBranch", op.Name())
		}
	}
	for _, op := range []Opcode{OpJE, OpJNE, OpJL, OpJG, OpJLE, OpJGE} {
		if !op.IsCond() {
			t.Errorf("%s not IsCond", op.Name())
		}
	}
	for _, op := range []Opcode{OpJMP, OpCALL, OpRET, OpJMPr} {
		if op.IsCond() {
			t.Errorf("%s reported IsCond", op.Name())
		}
	}
}

func TestDisassembleLinear(t *testing.T) {
	var code []byte
	code = MustEncode(code, Inst{Op: OpMOVri, A: 1, Imm: 42})
	code = MustEncode(code, Inst{Op: OpADDri, A: 1, Imm: 1})
	code = MustEncode(code, Inst{Op: OpRET})
	insts, addrs := Disassemble(code, 0x1000)
	if len(insts) != 3 {
		t.Fatalf("got %d insts, want 3", len(insts))
	}
	wantAddrs := []uint64{0x1000, 0x100A, 0x1010}
	for i, a := range wantAddrs {
		if addrs[i] != a {
			t.Errorf("addr[%d] = %#x, want %#x", i, addrs[i], a)
		}
	}
	// Stops at junk.
	insts, _ = Disassemble(append(code, 0xFF, 0xFF), 0)
	if len(insts) != 3 {
		t.Errorf("disassembly did not stop at junk byte: %d insts", len(insts))
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpMOVri, A: 2, Imm: 7}, "mov r2, 7"},
		{Inst{Op: OpLOAD, A: 1, B: 15, Imm: -8}, "load r1, [r15-8]"},
		{Inst{Op: OpSTORE, A: 3, B: 15, Imm: 8}, "store [r15+8], r3"},
		{Inst{Op: OpINT3}, "int3"},
		{Inst{Op: OpJE, Imm: 12}, "je +12"},
		{Inst{Op: OpPUSH, A: 15}, "push r15"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.in, got, tt.want)
		}
	}
	if !strings.Contains(Opcode(0xEE).Name(), "0xee") {
		t.Errorf("undefined opcode name = %q", Opcode(0xEE).Name())
	}
}

// Property: every valid instruction survives an encode/decode round trip.
func TestQuickEncodeDecodeInverse(t *testing.T) {
	regRR := []Opcode{OpMOVrr, OpADDrr, OpSUBrr, OpMULrr, OpDIVrr,
		OpANDrr, OpORrr, OpXORrr, OpSHLrr, OpSHRrr, OpCMPrr}
	f := func(opIdx uint8, a, b uint8, imm int64) bool {
		in := Inst{
			Op: regRR[int(opIdx)%len(regRR)],
			A:  Register(a % NumRegisters),
			B:  Register(b % NumRegisters),
		}
		enc, err := Encode(nil, in)
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		in.Size = in.Op.Length()
		return got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}

	g := func(a uint8, imm int64) bool {
		in := Inst{Op: OpMOVri, A: Register(a % NumRegisters), Imm: imm}
		enc, err := Encode(nil, in)
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		in.Size = 10
		return got == in
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}

	h := func(a uint8, imm int32) bool {
		in := Inst{Op: OpLOAD, A: Register(a % NumRegisters), B: SP, Imm: int64(imm)}
		enc, err := Encode(nil, in)
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		in.Size = 7
		return got == in
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes either fails or consumes
// Length(op) bytes with in-range operands.
func TestQuickDecodeTotal(t *testing.T) {
	f := func(raw []byte) bool {
		in, err := Decode(raw)
		if err != nil {
			return true
		}
		return in.Size == in.Op.Length() && in.A.Valid() && in.B.Valid() && in.Size <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
