package delf

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: arbitrary files survive a Marshal/Unmarshal round trip.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(name string, entry uint64, secData []byte, symName string, symVal uint64, needed string) bool {
		in := &File{
			Type:  TypeDyn,
			Name:  name,
			Entry: entry,
			Sections: []*Section{{
				Name: SecText, Addr: 0, Size: uint64(len(secData)),
				Perm: PermR | PermX, Data: secData,
			}},
			Symbols: []Symbol{{Name: symName, Value: symVal, Kind: SymFunc, Global: true}},
			Relocs:  []Reloc{{Off: symVal, Kind: RelGOT64, Symbol: symName, Addend: -int64(entry)}},
			Needed:  []string{needed},
		}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		if out.Name != in.Name || out.Entry != in.Entry || out.Type != in.Type {
			return false
		}
		if len(out.Sections) != 1 || !bytes.Equal(out.Sections[0].Data, secData) {
			return false
		}
		if len(out.Symbols) != 1 || out.Symbols[0] != in.Symbols[0] {
			return false
		}
		if len(out.Relocs) != 1 || out.Relocs[0] != in.Relocs[0] {
			return false
		}
		return len(out.Needed) == 1 && out.Needed[0] == needed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single byte of a marshaled file either fails
// to parse or parses without panicking — never corrupts silently into
// a panic.
func TestQuickBitFlipRobust(t *testing.T) {
	base := sampleFile().Marshal()
	f := func(pos uint16, val byte) bool {
		mut := append([]byte(nil), base...)
		mut[int(pos)%len(mut)] ^= val | 1
		_, _ = Unmarshal(mut) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
