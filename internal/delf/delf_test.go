package delf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	return &File{
		Type:  TypeExec,
		Name:  "sample",
		Entry: 0x400000,
		Sections: []*Section{
			{Name: SecText, Addr: 0x400000, Size: 16, Perm: PermR | PermX,
				Data: bytes.Repeat([]byte{0x90}, 16)},
			{Name: SecData, Addr: 0x402000, Size: 8, Perm: PermR | PermW,
				Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{Name: SecBSS, Addr: 0x403000, Size: 4096, Perm: PermR | PermW},
		},
		Symbols: []Symbol{
			{Name: "_start", Value: 0x400000, Size: 16, Kind: SymFunc, Global: true},
			{Name: "counter", Value: 0x402000, Size: 8, Kind: SymObject},
		},
		Relocs: []Reloc{
			{Off: 0x402000, Kind: RelGOT64, Symbol: "write", Addend: -4},
		},
		Needed: []string{"libc.so"},
	}
}

func filesEqual(a, b *File) bool {
	if a.Type != b.Type || a.Name != b.Name || a.Entry != b.Entry ||
		len(a.Sections) != len(b.Sections) || len(a.Symbols) != len(b.Symbols) ||
		len(a.Relocs) != len(b.Relocs) || len(a.Needed) != len(b.Needed) {
		return false
	}
	for i := range a.Sections {
		x, y := a.Sections[i], b.Sections[i]
		if x.Name != y.Name || x.Addr != y.Addr || x.Size != y.Size ||
			x.Perm != y.Perm || !bytes.Equal(x.Data, y.Data) {
			return false
		}
	}
	for i := range a.Symbols {
		if a.Symbols[i] != b.Symbols[i] {
			return false
		}
	}
	for i := range a.Relocs {
		if a.Relocs[i] != b.Relocs[i] {
			return false
		}
	}
	for i := range a.Needed {
		if a.Needed[i] != b.Needed[i] {
			return false
		}
	}
	return true
}

func TestMarshalRoundTrip(t *testing.T) {
	f := sampleFile()
	data := f.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !filesEqual(f, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", f, got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal([]byte("ELF?")); err == nil {
		t.Error("Unmarshal(bad magic) succeeded")
	}
	good := sampleFile().Marshal()
	for _, n := range []int{5, 13, 20, len(good) / 2, len(good) - 1} {
		if _, err := Unmarshal(good[:n]); err == nil {
			t.Errorf("Unmarshal(truncated to %d) succeeded", n)
		}
	}
}

// Property: truncating a valid file anywhere never panics and (except
// at full length) never round-trips silently to the same file.
func TestQuickTruncationSafety(t *testing.T) {
	good := sampleFile().Marshal()
	f := func(cut uint16) bool {
		n := int(cut) % len(good)
		_, err := Unmarshal(good[:n])
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSectionLookup(t *testing.T) {
	f := sampleFile()
	s, err := f.Section(SecText)
	if err != nil || s.Addr != 0x400000 {
		t.Fatalf("Section(.text) = %v, %v", s, err)
	}
	if _, err := f.Section(".nope"); err == nil {
		t.Error("Section(.nope) succeeded")
	}
	s, err = f.SectionAt(0x402004)
	if err != nil || s.Name != SecData {
		t.Fatalf("SectionAt(data) = %v, %v", s, err)
	}
	if _, err := f.SectionAt(0x500000); err == nil {
		t.Error("SectionAt(hole) succeeded")
	}
	if !s.Contains(0x402000) || s.Contains(0x402008) {
		t.Error("Contains boundary conditions wrong")
	}
}

func TestSymbolLookup(t *testing.T) {
	f := sampleFile()
	sym, err := f.Symbol("_start")
	if err != nil || sym.Value != 0x400000 {
		t.Fatalf("Symbol(_start) = %v, %v", sym, err)
	}
	if _, err := f.Symbol("missing"); err == nil {
		t.Error("Symbol(missing) succeeded")
	}
	got, ok := f.SymbolAt(0x400008)
	if !ok || got.Name != "_start" {
		t.Errorf("SymbolAt(0x400008) = %v, %v", got, ok)
	}
	if _, ok := f.SymbolAt(0x400010); ok {
		t.Error("SymbolAt past function end succeeded")
	}
	// Data symbols are not covered by SymbolAt.
	if _, ok := f.SymbolAt(0x402000); ok {
		t.Error("SymbolAt matched a data object")
	}
}

func TestImageSpanAndTextSize(t *testing.T) {
	f := sampleFile()
	lo, hi := f.ImageSpan()
	if lo != 0x400000 || hi != 0x404000 {
		t.Errorf("ImageSpan = %#x..%#x", lo, hi)
	}
	if f.TextSize() != 16 {
		t.Errorf("TextSize = %d", f.TextSize())
	}
	var empty File
	if lo, hi := empty.ImageSpan(); lo != 0 || hi != 0 {
		t.Error("empty ImageSpan not zero")
	}
	if empty.TextSize() != 0 {
		t.Error("empty TextSize not zero")
	}
}

func TestPermString(t *testing.T) {
	if got := (PermR | PermX).String(); got != "r-x" {
		t.Errorf("Perm r-x = %q", got)
	}
	if got := Perm(0).String(); got != "---" {
		t.Errorf("Perm 0 = %q", got)
	}
	if got := (PermR | PermW | PermX).String(); got != "rwx" {
		t.Errorf("Perm rwx = %q", got)
	}
}

func TestTypeAndRelKindStrings(t *testing.T) {
	if TypeExec.String() != "EXEC" || TypeDyn.String() != "DYN" {
		t.Error("Type strings wrong")
	}
	for k, want := range map[RelKind]string{
		RelPC32: "PC32", RelAbs64: "ABS64", RelPLT32: "PLT32", RelGOT64: "GOT64",
	} {
		if k.String() != want {
			t.Errorf("RelKind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSortedFuncs(t *testing.T) {
	f := &File{Symbols: []Symbol{
		{Name: "b", Value: 20, Kind: SymFunc},
		{Name: "a", Value: 10, Kind: SymFunc},
		{Name: "obj", Value: 5, Kind: SymObject},
	}}
	funcs := f.SortedFuncs()
	if len(funcs) != 2 || funcs[0].Name != "a" || funcs[1].Name != "b" {
		t.Errorf("SortedFuncs = %v", funcs)
	}
}
