package link

import (
	"errors"
	"fmt"

	"github.com/dynacut/dynacut/internal/delf"
)

// INT3 is the trap fill byte written over a removed PLT trampoline so
// any stale caller faults loudly instead of jumping through a dead
// GOT slot.
const INT3 = 0xCC

// PLT surgery errors.
var (
	ErrNoPLT   = errors.New("link: no PLT entry for symbol")
	ErrPatched = errors.New("link: GOT slot already patched")
)

// gotReloc returns the index of symbol's RelGOT64 import relocation,
// or -1 if the import has been dropped (or never existed).
func gotReloc(file *delf.File, symbol string) int {
	for i, rel := range file.Relocs {
		if rel.Kind == delf.RelGOT64 && rel.Symbol == symbol {
			return i
		}
	}
	return -1
}

// slotBytes bounds-checks the 8-byte field at addr and returns the
// backing slice within its section.
func slotBytes(file *delf.File, addr uint64) ([]byte, error) {
	sec, err := file.SectionAt(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: slot %#x outside image", ErrUnresolved, addr)
	}
	off := addr - sec.Addr
	if off+8 > uint64(len(sec.Data)) {
		return nil, fmt.Errorf("%w: slot %#x overruns %s", ErrUnresolved, addr, sec.Name)
	}
	return sec.Data[off : off+8], nil
}

// PatchGOTEntry resolves one import in place: the GOT slot for symbol
// is written with target (plus the relocation's addend) and the
// RelGOT64 entry is dropped, so a later DynamicPatches pass no longer
// consults the resolver for it. Patching a symbol whose slot was
// already patched returns ErrPatched; a symbol that was never
// imported returns ErrUndefined; a relocation pointing outside the
// image returns ErrUnresolved.
func PatchGOTEntry(file *delf.File, symbol string, target uint64) error {
	i := gotReloc(file, symbol)
	if i < 0 {
		// The @plt symbol outliving the relocation distinguishes
		// "already patched" from "never imported".
		if _, err := file.Symbol(symbol + PLTSuffix); err == nil {
			return fmt.Errorf("%w: %q", ErrPatched, symbol)
		}
		return fmt.Errorf("%w: %q (no GOT import)", ErrUndefined, symbol)
	}
	rel := file.Relocs[i]
	slot, err := slotBytes(file, rel.Off)
	if err != nil {
		return err
	}
	putU64(slot, uint64(int64(target)+rel.Addend))
	file.Relocs = append(file.Relocs[:i], file.Relocs[i+1:]...)
	return nil
}

// RemovePLTEntry severs an import the customized program no longer
// needs: the PLT trampoline is overwritten with INT3 traps, the GOT
// slot is zeroed, the import relocation is dropped, and the "@plt"
// symbol is removed from the symbol table. A second removal (or a
// symbol that never had a PLT entry) returns ErrNoPLT; a trampoline
// lying outside the image returns ErrUnresolved.
func RemovePLTEntry(file *delf.File, symbol string) error {
	pltName := symbol + PLTSuffix
	symIdx := -1
	var entry delf.Symbol
	for i, s := range file.Symbols {
		if s.Name == pltName {
			symIdx, entry = i, s
			break
		}
	}
	if symIdx < 0 {
		return fmt.Errorf("%w: %q", ErrNoPLT, symbol)
	}
	sec, err := file.SectionAt(entry.Value)
	if err != nil {
		return fmt.Errorf("%w: PLT entry %#x outside image", ErrUnresolved, entry.Value)
	}
	off := entry.Value - sec.Addr
	if off+PLTEntrySize > uint64(len(sec.Data)) {
		return fmt.Errorf("%w: PLT entry %#x overruns %s", ErrUnresolved, entry.Value, sec.Name)
	}
	for i := uint64(0); i < PLTEntrySize; i++ {
		sec.Data[off+i] = INT3
	}
	if ri := gotReloc(file, symbol); ri >= 0 {
		if slot, err := slotBytes(file, file.Relocs[ri].Off); err == nil {
			putU64(slot, 0)
		}
		file.Relocs = append(file.Relocs[:ri], file.Relocs[ri+1:]...)
	}
	file.Symbols = append(file.Symbols[:symIdx], file.Symbols[symIdx+1:]...)
	return nil
}
