package link

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
)

func TestLinkRejectsExecAsLibraryDep(t *testing.T) {
	exeObj := mustObj(t, ".text\n.global _start\n_start: ret\n")
	fakeLib, err := Executable("not-a-lib", []*asm.Object{exeObj})
	if err != nil {
		t.Fatal(err)
	}
	userObj := mustObj(t, `
.text
.global _start
_start:
	call something@plt
	ret
`)
	if _, err := Executable("p", []*asm.Object{userObj}, fakeLib); err == nil ||
		!strings.Contains(err.Error(), "not a shared library") {
		t.Fatalf("err = %v", err)
	}
}

func TestLinkBadBase(t *testing.T) {
	obj := mustObj(t, ".text\n.global _start\n_start: ret\n")
	if _, err := linkImage("p", delf.TypeExec, 0x400001, []*asm.Object{obj}, nil); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestLinkSymbolInUnknownSection(t *testing.T) {
	obj := &asm.Object{
		Sections: map[string]*asm.Section{
			".weird": {Name: ".weird", Data: []byte{1}, Size: 1},
		},
	}
	if _, err := Executable("p", []*asm.Object{obj}); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestLinkBSSOnlyObjectsMerge(t *testing.T) {
	a := mustObj(t, ".text\n.global _start\n_start:\n\tmov r1, =buf_a\n\tmov r2, =buf_b\n\tret\n.bss\nbuf_a: .space 100\n")
	b := mustObj(t, ".bss\nbuf_b: .space 200\n")
	exe, err := Executable("p", []*asm.Object{a, b})
	if err != nil {
		t.Fatal(err)
	}
	symA, err := exe.Symbol("buf_a")
	if err != nil {
		t.Fatal(err)
	}
	symB, err := exe.Symbol("buf_b")
	if err != nil {
		t.Fatal(err)
	}
	if symA.Value == symB.Value {
		t.Error("bss symbols collide")
	}
	bss, err := exe.Section(delf.SecBSS)
	if err != nil {
		t.Fatal(err)
	}
	if !bss.Contains(symA.Value) || !bss.Contains(symB.Value) {
		t.Errorf("bss symbols outside section: %#x %#x vs %v", symA.Value, symB.Value, bss)
	}
	if bss.Size < 300 {
		t.Errorf("bss size = %d", bss.Size)
	}
	if len(bss.Data) != 0 {
		t.Error("bss carries data")
	}
}

func TestLinkSymbolAlignmentAcrossObjects(t *testing.T) {
	// Object A's data ends at an odd size; object B's quad must still
	// land 8-aligned.
	a := mustObj(t, ".text\n.global _start\n_start: ret\n.data\nodd: .byte 1, 2, 3\n")
	b := mustObj(t, ".data\naligned: .quad 42\n")
	exe, err := Executable("p", []*asm.Object{a, b})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := exe.Symbol("aligned")
	if err != nil {
		t.Fatal(err)
	}
	if sym.Value%8 != 0 {
		t.Errorf("cross-object quad at %#x not 8-aligned", sym.Value)
	}
}

func TestPLTEntriesEmptyWithoutImports(t *testing.T) {
	exe, err := Executable("p", []*asm.Object{mustObj(t, ".text\n.global _start\n_start: ret\n")})
	if err != nil {
		t.Fatal(err)
	}
	if got := PLTEntries(exe); len(got) != 0 {
		t.Errorf("PLT entries = %v", got)
	}
	if _, err := exe.Section(delf.SecPLT); err == nil {
		t.Error("empty PLT section emitted")
	}
}

func TestLibraryExportsOnlyGlobals(t *testing.T) {
	lib := buildLib(t)
	sym, err := lib.Symbol("internal_helper")
	if err != nil {
		t.Fatal("local symbol missing from table entirely")
	}
	if sym.Global {
		t.Error("local symbol marked global")
	}
	// An executable cannot import it.
	obj := mustObj(t, `
.text
.global _start
_start:
	call internal_helper@plt
	ret
`)
	if _, err := Executable("p", []*asm.Object{obj}, lib); err == nil {
		t.Fatal("local symbol importable through PLT")
	}
}
