// Package link turns assembler objects into DELF executables and
// position-independent shared libraries, synthesizing PLT/GOT
// trampolines for cross-library calls, and computes the dynamic
// relocation patches a loader (or DynaCut's library injector) must
// apply when mapping a DYN file at a chosen base address.
package link

import (
	"errors"
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

// PageSize is the layout/alignment granularity, matching the kernel's
// page size.
const PageSize = 4096

// DefaultExecBase is where executables are linked, mirroring the
// traditional 0x400000 of x86-64 ELF.
const DefaultExecBase uint64 = 0x400000

// PLTEntrySize is the byte size of one synthesized PLT trampoline:
// lea r13, gotslot (6) + load r13,[r13+0] (7) + jmp r13 (2).
const PLTEntrySize = 15

// PLTSuffix names PLT entry symbols ("write@plt").
const PLTSuffix = "@plt"

// Link errors.
var (
	ErrUndefined  = errors.New("link: undefined symbol")
	ErrDuplicate  = errors.New("link: duplicate symbol")
	ErrNoEntry    = errors.New("link: no _start symbol")
	ErrUnresolved = errors.New("link: unresolvable relocation")
	ErrBadBase    = errors.New("link: base address not page aligned")
	ErrNotDyn     = errors.New("link: not a shared library")
)

// sectionOrder fixes the image layout.
var sectionOrder = []struct {
	name string
	perm delf.Perm
}{
	{delf.SecText, delf.PermR | delf.PermX},
	{delf.SecPLT, delf.PermR | delf.PermX},
	{delf.SecROData, delf.PermR},
	{delf.SecData, delf.PermR | delf.PermW},
	{delf.SecGOT, delf.PermR | delf.PermW},
	{delf.SecBSS, delf.PermR | delf.PermW},
}

// Executable links objects against the exported symbols of libs into a
// DELF executable based at DefaultExecBase. Calls written as
// `call name@plt` become PLT trampolines whose GOT slots the loader
// fills with the library symbol's runtime address (recorded as
// RelGOT64 entries in the output's Relocs).
func Executable(name string, objs []*asm.Object, libs ...*delf.File) (*delf.File, error) {
	return linkImage(name, delf.TypeExec, DefaultExecBase, objs, libs)
}

// Library links objects into a position-independent shared library
// based at 0. Remaining RelAbs64 relocations (against the library's
// own symbols) and RelGOT64 relocations (imports) stay in Relocs for
// the loader/injector.
func Library(name string, objs []*asm.Object, deps ...*delf.File) (*delf.File, error) {
	return linkImage(name, delf.TypeDyn, 0, objs, deps)
}

type symAddr struct {
	addr   uint64
	size   uint64
	kind   delf.SymKind
	global bool
}

func linkImage(name string, typ delf.Type, base uint64, objs []*asm.Object, libs []*delf.File) (*delf.File, error) {
	if base%PageSize != 0 {
		return nil, fmt.Errorf("%w: %#x", ErrBadBase, base)
	}

	// Gather PLT imports in first-use order.
	var pltNames []string
	pltIndex := map[string]int{}
	for _, obj := range objs {
		for _, rel := range obj.Relocs {
			if rel.Kind == delf.RelPLT32 {
				if _, ok := pltIndex[rel.Symbol]; !ok {
					pltIndex[rel.Symbol] = len(pltNames)
					pltNames = append(pltNames, rel.Symbol)
				}
			}
		}
	}

	// Verify imports resolve against the provided libraries.
	libExports := map[string]string{} // symbol -> soname
	for _, lib := range libs {
		if lib.Type != delf.TypeDyn {
			return nil, fmt.Errorf("%w: %s", ErrNotDyn, lib.Name)
		}
		for _, sym := range lib.Symbols {
			if sym.Global {
				if _, dup := libExports[sym.Name]; !dup {
					libExports[sym.Name] = lib.Name
				}
			}
		}
	}
	neededSet := map[string]bool{}
	for _, imp := range pltNames {
		so, ok := libExports[imp]
		if !ok {
			return nil, fmt.Errorf("%w: %q (imported via @plt)", ErrUndefined, imp)
		}
		neededSet[so] = true
	}

	// Merge object sections, tracking (obj, section) -> merged offset.
	type key struct {
		obj int
		sec string
	}
	offsets := map[key]uint64{}
	merged := map[string]*asm.Section{}
	for _, so := range sectionOrder {
		merged[so.name] = &asm.Section{Name: so.name}
	}
	for i, obj := range objs {
		for secName, sec := range obj.Sections {
			m, ok := merged[secName]
			if !ok {
				return nil, fmt.Errorf("link: unknown section %q", secName)
			}
			// Keep every symbol 8-aligned across object boundaries.
			pad := (8 - m.Size%8) % 8
			if secName != delf.SecBSS {
				m.Data = append(m.Data, make([]byte, pad)...)
			}
			m.Size += pad
			offsets[key{i, secName}] = m.Size
			if secName == delf.SecBSS {
				m.Size += sec.Size
			} else {
				m.Data = append(m.Data, sec.Data...)
				m.Size = uint64(len(m.Data))
			}
		}
	}

	// Synthesize PLT and GOT section contents (placeholders; code is
	// patched once addresses are known).
	plt := merged[delf.SecPLT]
	got := merged[delf.SecGOT]
	plt.Data = make([]byte, PLTEntrySize*len(pltNames))
	plt.Size = uint64(len(plt.Data))
	got.Data = make([]byte, 8*len(pltNames))
	got.Size = uint64(len(got.Data))

	// Assign section addresses.
	out := &delf.File{Type: typ, Name: name}
	addr := base
	secAddr := map[string]uint64{}
	for _, so := range sectionOrder {
		m := merged[so.name]
		if m.Size == 0 {
			continue
		}
		secAddr[so.name] = addr
		s := &delf.Section{Name: so.name, Addr: addr, Size: m.Size, Perm: so.perm}
		if so.name != delf.SecBSS {
			s.Data = m.Data
		}
		out.Sections = append(out.Sections, s)
		addr += (m.Size + PageSize - 1) / PageSize * PageSize
	}

	// Resolve symbol addresses.
	syms := map[string]symAddr{}
	for i, obj := range objs {
		for _, def := range obj.Symbols {
			secBase, ok := secAddr[def.Section]
			if !ok {
				return nil, fmt.Errorf("link: symbol %q in empty section %q", def.Name, def.Section)
			}
			a := secBase + offsets[key{i, def.Section}] + def.Off
			if _, dup := syms[def.Name]; dup {
				return nil, fmt.Errorf("%w: %q", ErrDuplicate, def.Name)
			}
			syms[def.Name] = symAddr{addr: a, size: def.Size, kind: def.Kind, global: def.Global}
		}
	}

	// Emit PLT entries and record GOT import relocations.
	if len(pltNames) > 0 {
		pltBase := secAddr[delf.SecPLT]
		gotBase := secAddr[delf.SecGOT]
		pltSec, _ := out.Section(delf.SecPLT)
		for i, imp := range pltNames {
			entryAddr := pltBase + uint64(i)*PLTEntrySize
			slotAddr := gotBase + uint64(i)*8
			code := encodePLTEntry(entryAddr, slotAddr)
			copy(pltSec.Data[i*PLTEntrySize:], code)
			syms[imp+PLTSuffix] = symAddr{
				addr: entryAddr, size: PLTEntrySize, kind: delf.SymFunc, global: true,
			}
			out.Relocs = append(out.Relocs, delf.Reloc{
				Off: slotAddr, Kind: delf.RelGOT64, Symbol: imp,
			})
		}
	}

	// Apply relocations from the objects.
	for i, obj := range objs {
		for _, rel := range obj.Relocs {
			secBase, ok := secAddr[rel.Section]
			if !ok {
				return nil, fmt.Errorf("link: relocation in empty section %q", rel.Section)
			}
			fieldAddr := secBase + offsets[key{i, rel.Section}] + rel.Off
			sec, err := out.SectionAt(fieldAddr)
			if err != nil {
				return nil, err
			}
			fieldOff := fieldAddr - sec.Addr
			switch rel.Kind {
			case delf.RelPC32:
				target, ok := syms[rel.Symbol]
				if !ok {
					return nil, fmt.Errorf("%w: %q", ErrUndefined, rel.Symbol)
				}
				// rel32 is relative to the end of the 4-byte field.
				delta := int64(target.addr) + rel.Addend - int64(fieldAddr+4)
				if delta < -(1<<31) || delta >= 1<<31 {
					return nil, fmt.Errorf("%w: PC32 overflow to %q", ErrUnresolved, rel.Symbol)
				}
				putU32(sec.Data[fieldOff:], uint32(int32(delta)))
			case delf.RelPLT32:
				target, ok := syms[rel.Symbol+PLTSuffix]
				if !ok {
					return nil, fmt.Errorf("%w: no PLT entry for %q", ErrUnresolved, rel.Symbol)
				}
				delta := int64(target.addr) + rel.Addend - int64(fieldAddr+4)
				putU32(sec.Data[fieldOff:], uint32(int32(delta)))
			case delf.RelAbs64:
				target, ok := syms[rel.Symbol]
				if !ok {
					return nil, fmt.Errorf("%w: %q", ErrUndefined, rel.Symbol)
				}
				if typ == delf.TypeDyn {
					// Value depends on the load base: defer to load time.
					out.Relocs = append(out.Relocs, delf.Reloc{
						Off: fieldAddr, Kind: delf.RelAbs64,
						Symbol: rel.Symbol, Addend: rel.Addend,
					})
					continue
				}
				putU64(sec.Data[fieldOff:], uint64(int64(target.addr)+rel.Addend))
			default:
				return nil, fmt.Errorf("%w: kind %v", ErrUnresolved, rel.Kind)
			}
		}
	}

	// Build the output symbol table (sorted for determinism).
	for n, sa := range syms {
		out.Symbols = append(out.Symbols, delf.Symbol{
			Name: n, Value: sa.addr, Size: sa.size, Kind: sa.kind, Global: sa.global,
		})
	}
	sort.Slice(out.Symbols, func(i, j int) bool {
		if out.Symbols[i].Value != out.Symbols[j].Value {
			return out.Symbols[i].Value < out.Symbols[j].Value
		}
		return out.Symbols[i].Name < out.Symbols[j].Name
	})
	for so := range neededSet {
		out.Needed = append(out.Needed, so)
	}
	sort.Strings(out.Needed)

	if typ == delf.TypeExec {
		start, ok := syms["_start"]
		if !ok {
			return nil, ErrNoEntry
		}
		out.Entry = start.addr
	}
	return out, nil
}

// encodePLTEntry builds one PLT trampoline at entryAddr jumping
// through the GOT slot at slotAddr.
func encodePLTEntry(entryAddr, slotAddr uint64) []byte {
	var code []byte
	// lea r13, slot  (rel32 relative to next instruction = entry+6)
	rel := int64(slotAddr) - int64(entryAddr+6)
	code = isa.MustEncode(code, isa.Inst{Op: isa.OpLEA, A: 13, Imm: rel})
	code = isa.MustEncode(code, isa.Inst{Op: isa.OpLOAD, A: 13, B: 13, Imm: 0})
	code = isa.MustEncode(code, isa.Inst{Op: isa.OpJMPr, A: 13})
	return code
}

// Patch is a byte write the loader applies after mapping an image.
type Patch struct {
	Addr  uint64
	Bytes []byte
}

// DynamicPatches computes the load-time patches for mapping file at
// base. resolve must return the absolute runtime address of an
// imported symbol (for RelGOT64) and is also consulted for RelAbs64
// symbols not defined by the file itself. The file's own symbols
// resolve to base+value.
func DynamicPatches(file *delf.File, base uint64, resolve func(string) (uint64, bool)) ([]Patch, error) {
	if file.Type == delf.TypeDyn && base%PageSize != 0 {
		return nil, fmt.Errorf("%w: %#x", ErrBadBase, base)
	}
	own := map[string]uint64{}
	for _, sym := range file.Symbols {
		own[sym.Name] = base + sym.Value
	}
	lookup := func(name string) (uint64, bool) {
		if a, ok := own[name]; ok {
			return a, true
		}
		if resolve != nil {
			return resolve(name)
		}
		return 0, false
	}
	var patches []Patch
	for _, rel := range file.Relocs {
		switch rel.Kind {
		case delf.RelAbs64, delf.RelGOT64:
			target, ok := lookup(rel.Symbol)
			if !ok {
				return nil, fmt.Errorf("%w: %q in %s", ErrUndefined, rel.Symbol, file.Name)
			}
			b := make([]byte, 8)
			putU64(b, uint64(int64(target)+rel.Addend))
			patches = append(patches, Patch{Addr: base + rel.Off, Bytes: b})
		default:
			return nil, fmt.Errorf("%w: dynamic %v in %s", ErrUnresolved, rel.Kind, file.Name)
		}
	}
	return patches, nil
}

// PLTEntries lists the (symbol, entry address) pairs of an
// executable's PLT, sorted by address. The suffixed "@plt" is
// stripped from the names.
func PLTEntries(file *delf.File) []delf.Symbol {
	var out []delf.Symbol
	for _, sym := range file.Symbols {
		if len(sym.Name) > len(PLTSuffix) && sym.Name[len(sym.Name)-len(PLTSuffix):] == PLTSuffix {
			s := sym
			s.Name = sym.Name[:len(sym.Name)-len(PLTSuffix)]
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
