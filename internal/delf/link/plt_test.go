package link

import (
	"bytes"
	"errors"
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
)

// buildImportingExe links an executable importing write and strcmp
// through the PLT, the fixture every surgery table below operates on.
func buildImportingExe(t *testing.T) *delf.File {
	t.Helper()
	lib := buildLib(t)
	exe, err := Executable("prog", []*asm.Object{mustObj(t, `
.text
.global _start
_start:
	call write@plt
	call strcmp@plt
	mov r0, 60
	syscall
`)}, lib)
	if err != nil {
		t.Fatalf("Executable: %v", err)
	}
	return exe
}

func leU64At(t *testing.T, file *delf.File, addr uint64) uint64 {
	t.Helper()
	sec, err := file.SectionAt(addr)
	if err != nil {
		t.Fatalf("SectionAt(%#x): %v", addr, err)
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(sec.Data[addr-sec.Addr+i]) << (8 * i)
	}
	return v
}

func gotSlotAddr(t *testing.T, file *delf.File, symbol string) uint64 {
	t.Helper()
	for _, rel := range file.Relocs {
		if rel.Kind == delf.RelGOT64 && rel.Symbol == symbol {
			return rel.Off
		}
	}
	t.Fatalf("no GOT reloc for %q", symbol)
	return 0
}

func TestRemovePLTEntry(t *testing.T) {
	tests := []struct {
		name    string
		prep    func(t *testing.T, exe *delf.File) // mutate before the call under test
		symbol  string
		wantErr error
	}{
		{name: "removes live entry", symbol: "write"},
		{name: "missing symbol", symbol: "getpid", wantErr: ErrNoPLT},
		{name: "internal symbol has no PLT", symbol: "_start", wantErr: ErrNoPLT},
		{
			name:   "already removed",
			symbol: "write",
			prep: func(t *testing.T, exe *delf.File) {
				if err := RemovePLTEntry(exe, "write"); err != nil {
					t.Fatalf("first removal: %v", err)
				}
			},
			wantErr: ErrNoPLT,
		},
		{
			name:   "out-of-range trampoline",
			symbol: "write",
			prep: func(t *testing.T, exe *delf.File) {
				for i := range exe.Symbols {
					if exe.Symbols[i].Name == "write"+PLTSuffix {
						exe.Symbols[i].Value = 0xdead_0000 // no section there
					}
				}
			},
			wantErr: ErrUnresolved,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			exe := buildImportingExe(t)
			if tc.prep != nil {
				tc.prep(t, exe)
			}
			err := RemovePLTEntry(exe, tc.symbol)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			// The trampoline is INT3 fill.
			entry, err2 := buildImportingExe(t).Symbol(tc.symbol + PLTSuffix)
			if err2 != nil {
				t.Fatal(err2)
			}
			sec, err2 := exe.SectionAt(entry.Value)
			if err2 != nil {
				t.Fatal(err2)
			}
			off := entry.Value - sec.Addr
			if !bytes.Equal(sec.Data[off:off+PLTEntrySize], bytes.Repeat([]byte{INT3}, PLTEntrySize)) {
				t.Errorf("trampoline not wiped: %x", sec.Data[off:off+PLTEntrySize])
			}
			// The @plt symbol and the import relocation are gone, the
			// GOT slot is zeroed, and the surviving import is intact.
			if _, err2 := exe.Symbol(tc.symbol + PLTSuffix); err2 == nil {
				t.Error("@plt symbol survived removal")
			}
			for _, rel := range exe.Relocs {
				if rel.Symbol == tc.symbol {
					t.Errorf("import reloc survived removal: %+v", rel)
				}
			}
			if got := leU64At(t, exe, gotSlotAddr(t, exe, "strcmp")-8); got != 0 {
				// write's slot precedes strcmp's (first-use order).
				t.Errorf("removed GOT slot = %#x, want 0", got)
			}
			if len(PLTEntries(exe)) != 1 {
				t.Errorf("PLT entries after removal = %+v", PLTEntries(exe))
			}
		})
	}
}

func TestPatchGOTEntry(t *testing.T) {
	const target = uint64(0x7f00_1000)
	tests := []struct {
		name    string
		prep    func(t *testing.T, exe *delf.File)
		symbol  string
		wantErr error
	}{
		{name: "patches live slot", symbol: "write"},
		{name: "missing symbol", symbol: "getpid", wantErr: ErrUndefined},
		{
			name:   "already patched",
			symbol: "write",
			prep: func(t *testing.T, exe *delf.File) {
				if err := PatchGOTEntry(exe, "write", target); err != nil {
					t.Fatalf("first patch: %v", err)
				}
			},
			wantErr: ErrPatched,
		},
		{
			name:   "out-of-range relocation",
			symbol: "write",
			prep: func(t *testing.T, exe *delf.File) {
				for i := range exe.Relocs {
					if exe.Relocs[i].Symbol == "write" {
						exe.Relocs[i].Off = 0xdead_0000
					}
				}
			},
			wantErr: ErrUnresolved,
		},
		{
			name:   "slot overruns section",
			symbol: "strcmp",
			prep: func(t *testing.T, exe *delf.File) {
				got, err := exe.Section(delf.SecGOT)
				if err != nil {
					t.Fatal(err)
				}
				// Push the slot past the section's last full 8 bytes.
				for i := range exe.Relocs {
					if exe.Relocs[i].Symbol == "strcmp" {
						exe.Relocs[i].Off = got.Addr + uint64(len(got.Data)) - 4
					}
				}
			},
			wantErr: ErrUnresolved,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			exe := buildImportingExe(t)
			if tc.prep != nil {
				tc.prep(t, exe)
			}
			err := PatchGOTEntry(exe, tc.symbol, target)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			slot := gotSlotAddr(t, exe, "strcmp") - 8 // write's slot
			if got := leU64At(t, exe, slot); got != target {
				t.Errorf("patched slot = %#x, want %#x", got, target)
			}
			// DynamicPatches no longer consults the resolver for it.
			patches, err := DynamicPatches(exe, 0, func(name string) (uint64, bool) {
				if name == tc.symbol {
					t.Errorf("resolver consulted for patched %q", name)
				}
				return 0x9000, true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(patches) != 1 {
				t.Errorf("patches after in-place GOT fill = %+v", patches)
			}
			// The trampoline and @plt symbol survive: callers still work.
			if _, err := exe.Symbol(tc.symbol + PLTSuffix); err != nil {
				t.Errorf("@plt symbol lost by GOT patch: %v", err)
			}
		})
	}
}

// TestRemoveThenPatchDistinguishes pins the error taxonomy: after a
// removal the symbol is fully gone (ErrUndefined from the patcher,
// ErrNoPLT from the remover), while after a patch the entry persists
// and only re-patching is refused.
func TestRemoveThenPatchDistinguishes(t *testing.T) {
	exe := buildImportingExe(t)
	if err := RemovePLTEntry(exe, "write"); err != nil {
		t.Fatal(err)
	}
	if err := PatchGOTEntry(exe, "write", 0x1000); !errors.Is(err, ErrUndefined) {
		t.Errorf("patch after removal = %v, want ErrUndefined", err)
	}

	exe = buildImportingExe(t)
	if err := PatchGOTEntry(exe, "strcmp", 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := RemovePLTEntry(exe, "strcmp"); err != nil {
		t.Errorf("removal after patch should still work: %v", err)
	}
}
