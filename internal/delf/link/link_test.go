package link

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

func mustObj(t *testing.T, src string) *asm.Object {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return obj
}

const tinyLibSrc = `
.text
.global write
write:
	mov r0, 1
	syscall
	ret
.global strcmp
strcmp:
	mov r0, 0
	ret
internal_helper:
	ret
.data
libdata: .quad write
`

func buildLib(t *testing.T) *delf.File {
	t.Helper()
	lib, err := Library("libc.so", []*asm.Object{mustObj(t, tinyLibSrc)})
	if err != nil {
		t.Fatalf("Library: %v", err)
	}
	return lib
}

func TestLinkExecutableBasics(t *testing.T) {
	exe, err := Executable("prog", []*asm.Object{mustObj(t, `
.text
.global _start
_start:
	call helper
	mov r0, 60
	syscall
helper:
	ret
.data
v: .quad 42
`)})
	if err != nil {
		t.Fatalf("Executable: %v", err)
	}
	if exe.Type != delf.TypeExec || exe.Entry != DefaultExecBase {
		t.Errorf("type/entry = %v/%#x", exe.Type, exe.Entry)
	}
	text, err := exe.Section(delf.SecText)
	if err != nil {
		t.Fatal(err)
	}
	// The call's rel32 should reach helper.
	in, err := isa.Decode(text.Data)
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := in.Target(text.Addr)
	if !ok {
		t.Fatal("call has no target")
	}
	sym, err := exe.Symbol("helper")
	if err != nil {
		t.Fatal(err)
	}
	if tgt != sym.Value {
		t.Errorf("call target %#x, helper at %#x", tgt, sym.Value)
	}
	// Sections page-aligned and ordered.
	var prevEnd uint64
	for _, s := range exe.Sections {
		if s.Addr%PageSize != 0 {
			t.Errorf("section %s at unaligned %#x", s.Name, s.Addr)
		}
		if s.Addr < prevEnd {
			t.Errorf("section %s overlaps previous", s.Name)
		}
		prevEnd = s.End()
	}
	if len(exe.Relocs) != 0 {
		t.Errorf("executable without imports has relocs: %+v", exe.Relocs)
	}
}

func TestLinkMissingStart(t *testing.T) {
	_, err := Executable("p", []*asm.Object{mustObj(t, ".text\nf: ret\n")})
	if err == nil || !strings.Contains(err.Error(), "_start") {
		t.Fatalf("err = %v, want no _start", err)
	}
}

func TestLinkUndefinedSymbol(t *testing.T) {
	_, err := Executable("p", []*asm.Object{mustObj(t, `
.text
.global _start
_start:
	call nowhere
	ret
`)})
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v, want undefined nowhere", err)
	}
}

func TestLinkDuplicateSymbol(t *testing.T) {
	a := mustObj(t, ".text\n.global _start\n_start: ret\n")
	b := mustObj(t, ".text\n_start: ret\n")
	if _, err := Executable("p", []*asm.Object{a, b}); err == nil {
		t.Fatal("duplicate _start accepted")
	}
}

func TestLinkAgainstLibraryPLT(t *testing.T) {
	lib := buildLib(t)
	exe, err := Executable("prog", []*asm.Object{mustObj(t, `
.text
.global _start
_start:
	call write@plt
	call strcmp@plt
	call write@plt       ; reuses the same PLT entry
	mov r0, 60
	syscall
`)}, lib)
	if err != nil {
		t.Fatalf("Executable: %v", err)
	}
	if len(exe.Needed) != 1 || exe.Needed[0] != "libc.so" {
		t.Errorf("Needed = %v", exe.Needed)
	}
	plt := PLTEntries(exe)
	if len(plt) != 2 {
		t.Fatalf("PLT entries = %+v, want 2", plt)
	}
	names := map[string]bool{}
	for _, p := range plt {
		names[p.Name] = true
		if p.Size != PLTEntrySize {
			t.Errorf("PLT entry %s size %d", p.Name, p.Size)
		}
	}
	if !names["write"] || !names["strcmp"] {
		t.Errorf("PLT names = %v", names)
	}
	// Two GOT import relocations recorded.
	var gots int
	for _, r := range exe.Relocs {
		if r.Kind == delf.RelGOT64 {
			gots++
		}
	}
	if gots != 2 {
		t.Errorf("GOT relocs = %d, want 2", gots)
	}
	// PLT section decodes to valid trampolines.
	pltSec, err := exe.Section(delf.SecPLT)
	if err != nil {
		t.Fatal(err)
	}
	insts, _ := isa.Disassemble(pltSec.Data[:PLTEntrySize], pltSec.Addr)
	if len(insts) != 3 || insts[0].Op != isa.OpLEA ||
		insts[1].Op != isa.OpLOAD || insts[2].Op != isa.OpJMPr {
		t.Errorf("PLT entry decodes to %v", insts)
	}
	// The LEA in entry 0 must point at GOT slot 0.
	got, err := exe.Section(delf.SecGOT)
	if err != nil {
		t.Fatal(err)
	}
	leaTarget := pltSec.Addr + uint64(insts[0].Size) + uint64(insts[0].Imm)
	if leaTarget != got.Addr {
		t.Errorf("PLT[0] LEA -> %#x, GOT at %#x", leaTarget, got.Addr)
	}
}

func TestLinkImportNotInLibs(t *testing.T) {
	lib := buildLib(t)
	_, err := Executable("p", []*asm.Object{mustObj(t, `
.text
.global _start
_start:
	call missing_func@plt
	ret
`)}, lib)
	if err == nil || !strings.Contains(err.Error(), "missing_func") {
		t.Fatalf("err = %v", err)
	}
}

func TestLibraryPositionIndependence(t *testing.T) {
	lib := buildLib(t)
	if lib.Type != delf.TypeDyn {
		t.Fatal("not DYN")
	}
	// The .quad write data reloc must remain dynamic.
	if len(lib.Relocs) != 1 || lib.Relocs[0].Kind != delf.RelAbs64 ||
		lib.Relocs[0].Symbol != "write" {
		t.Fatalf("lib relocs = %+v", lib.Relocs)
	}
	// Patches at two different bases differ by the base delta.
	p1, err := DynamicPatches(lib, 0x10000000, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DynamicPatches(lib, 0x20000000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 1 || len(p2) != 1 {
		t.Fatalf("patches = %d/%d", len(p1), len(p2))
	}
	v1 := leU64(p1[0].Bytes)
	v2 := leU64(p2[0].Bytes)
	if v2-v1 != 0x10000000 {
		t.Errorf("patch values %#x/%#x not base-shifted", v1, v2)
	}
	if p2[0].Addr-p1[0].Addr != 0x10000000 {
		t.Errorf("patch addrs %#x/%#x not base-shifted", p1[0].Addr, p2[0].Addr)
	}
}

func TestDynamicPatchesResolveImports(t *testing.T) {
	lib := buildLib(t)
	exe, err := Executable("prog", []*asm.Object{mustObj(t, `
.text
.global _start
_start:
	call write@plt
	ret
`)}, lib)
	if err != nil {
		t.Fatal(err)
	}
	libBase := uint64(0x10000000)
	writeSym, err := lib.Symbol("write")
	if err != nil {
		t.Fatal(err)
	}
	patches, err := DynamicPatches(exe, 0, func(name string) (uint64, bool) {
		if name == "write" {
			return libBase + writeSym.Value, true
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) != 1 {
		t.Fatalf("patches = %+v", patches)
	}
	if leU64(patches[0].Bytes) != libBase+writeSym.Value {
		t.Errorf("GOT slot value %#x", leU64(patches[0].Bytes))
	}
	// Unresolvable import errors out.
	if _, err := DynamicPatches(exe, 0, nil); err == nil {
		t.Error("DynamicPatches with nil resolver succeeded")
	}
}

func TestDynamicPatchesBadBase(t *testing.T) {
	lib := buildLib(t)
	if _, err := DynamicPatches(lib, 12345, nil); err == nil {
		t.Error("unaligned base accepted")
	}
}

func TestLinkMergesMultipleObjects(t *testing.T) {
	a := mustObj(t, ".text\n.global _start\n_start:\n\tcall other\n\tret\n")
	b := mustObj(t, ".text\n.global other\nother: ret\n.data\nx: .quad 9\n")
	exe, err := Executable("p", []*asm.Object{a, b})
	if err != nil {
		t.Fatalf("Executable: %v", err)
	}
	text, _ := exe.Section(delf.SecText)
	in, err := isa.Decode(text.Data)
	if err != nil {
		t.Fatal(err)
	}
	tgt, _ := in.Target(text.Addr)
	other, err := exe.Symbol("other")
	if err != nil {
		t.Fatal(err)
	}
	if tgt != other.Value {
		t.Errorf("cross-object call -> %#x, other at %#x", tgt, other.Value)
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
