// Package delf defines the DELF binary format: the ELF-analogue
// container for programs and shared libraries in the simulated system.
//
// A DELF file is either an executable (TypeExec, linked at a fixed
// base) or a position-independent shared library (TypeDyn, linked at
// base 0 and relocated by the loader or — for DynaCut's injected
// signal-handler library — by the image rewriter). Files carry
// sections, a symbol table, and relocation records; executables
// additionally carry a synthesized PLT/GOT so that calls into shared
// libraries go through patchable, wipeable trampolines exactly as on
// Linux/x86.
package delf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Magic identifies a serialized DELF file.
var Magic = [4]byte{'D', 'E', 'L', 'F'}

// FormatVersion is bumped on incompatible serialization changes.
const FormatVersion = 1

// Type distinguishes executables from shared libraries.
type Type uint8

// File types.
const (
	TypeExec Type = iota + 1
	TypeDyn
)

func (t Type) String() string {
	switch t {
	case TypeExec:
		return "EXEC"
	case TypeDyn:
		return "DYN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Perm is a VMA/section permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Well-known section names.
const (
	SecText   = ".text"
	SecPLT    = ".plt"
	SecROData = ".rodata"
	SecData   = ".data"
	SecGOT    = ".got"
	SecBSS    = ".bss"
)

// Section is a contiguous, uniformly-permissioned region of the file.
// Addr is absolute for executables and base-relative for libraries.
// BSS sections have Size > len(Data) == 0.
type Section struct {
	Name string
	Addr uint64
	Size uint64
	Perm Perm
	Data []byte
}

// End returns the first address past the section.
func (s *Section) End() uint64 { return s.Addr + s.Size }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint64) bool {
	return addr >= s.Addr && addr < s.End()
}

// SymKind distinguishes function symbols from data objects.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota + 1
	SymObject
)

// Symbol is a named address. Value follows the same absolute/relative
// convention as Section.Addr.
type Symbol struct {
	Name   string
	Value  uint64
	Size   uint64
	Kind   SymKind
	Global bool
}

// RelKind enumerates relocation types.
type RelKind uint8

// Relocation kinds.
//
//	RelPC32:  *(int32*)(P) = S + A - (P + 4)   — rel32 branch/LEA fields
//	RelAbs64: *(uint64*)(P) = S + A            — .quad label, mov =label
//	RelPLT32: like RelPC32 but S is the PLT entry synthesized for the
//	          (external) symbol.
//	RelGOT64: the 8-byte slot at P is a GOT entry to be filled with the
//	          runtime absolute address of the symbol, which lives in
//	          another library. Present only in TypeDyn files; resolved
//	          at load/injection time.
const (
	RelPC32 RelKind = iota + 1
	RelAbs64
	RelPLT32
	RelGOT64
)

func (k RelKind) String() string {
	switch k {
	case RelPC32:
		return "PC32"
	case RelAbs64:
		return "ABS64"
	case RelPLT32:
		return "PLT32"
	case RelGOT64:
		return "GOT64"
	default:
		return fmt.Sprintf("RelKind(%d)", uint8(k))
	}
}

// Reloc is one relocation record. Off is the address of the field to
// patch (same absolute/relative convention), Symbol the target name,
// Addend the constant A.
type Reloc struct {
	Off    uint64
	Kind   RelKind
	Symbol string
	Addend int64
}

// File is a parsed or under-construction DELF binary.
type File struct {
	Type     Type
	Name     string // soname / program name
	Entry    uint64 // entry point (TypeExec only)
	Sections []*Section
	Symbols  []Symbol
	// Relocs holds the *unresolved* relocations remaining in the
	// file: for TypeExec this is empty after linking; for TypeDyn it
	// is the dynamic relocation table (RelGOT64 against other
	// libraries, RelAbs64 against the library's own base).
	Relocs []Reloc
	// Needed lists sonames of libraries this file imports from.
	Needed []string
}

// Errors returned by lookup and parsing.
var (
	ErrNoSymbol   = errors.New("delf: symbol not found")
	ErrNoSection  = errors.New("delf: section not found")
	ErrBadFile    = errors.New("delf: malformed file")
	ErrBadVersion = errors.New("delf: unsupported format version")
)

// Section returns the named section.
func (f *File) Section(name string) (*Section, error) {
	for _, s := range f.Sections {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: %q in %s", ErrNoSection, name, f.Name)
}

// SectionAt returns the section containing addr.
func (f *File) SectionAt(addr uint64) (*Section, error) {
	for _, s := range f.Sections {
		if s.Contains(addr) {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: no section at %#x in %s", ErrNoSection, addr, f.Name)
}

// Symbol returns the named symbol.
func (f *File) Symbol(name string) (Symbol, error) {
	for _, sym := range f.Symbols {
		if sym.Name == name {
			return sym, nil
		}
	}
	return Symbol{}, fmt.Errorf("%w: %q in %s", ErrNoSymbol, name, f.Name)
}

// SymbolAt returns the function symbol covering addr, if any.
func (f *File) SymbolAt(addr uint64) (Symbol, bool) {
	for _, sym := range f.Symbols {
		if sym.Kind == SymFunc && addr >= sym.Value && addr < sym.Value+sym.Size {
			return sym, true
		}
	}
	return Symbol{}, false
}

// TextSize returns the size of .text in bytes, 0 if absent.
func (f *File) TextSize() uint64 {
	if s, err := f.Section(SecText); err == nil {
		return s.Size
	}
	return 0
}

// ImageSpan returns the [lo, hi) virtual address range covered by all
// sections.
func (f *File) ImageSpan() (lo, hi uint64) {
	if len(f.Sections) == 0 {
		return 0, 0
	}
	lo = f.Sections[0].Addr
	for _, s := range f.Sections {
		if s.Addr < lo {
			lo = s.Addr
		}
		if s.End() > hi {
			hi = s.End()
		}
	}
	return lo, hi
}

// SortedFuncs returns global function symbols sorted by address.
func (f *File) SortedFuncs() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Marshal serializes the file.
func (f *File) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	w := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	ws := func(s string) {
		w(uint64(len(s)))
		buf.WriteString(s)
	}
	w(FormatVersion)
	buf.WriteByte(byte(f.Type))
	ws(f.Name)
	w(f.Entry)
	w(uint64(len(f.Sections)))
	for _, s := range f.Sections {
		ws(s.Name)
		w(s.Addr)
		w(s.Size)
		buf.WriteByte(byte(s.Perm))
		w(uint64(len(s.Data)))
		buf.Write(s.Data)
	}
	w(uint64(len(f.Symbols)))
	for _, sym := range f.Symbols {
		ws(sym.Name)
		w(sym.Value)
		w(sym.Size)
		buf.WriteByte(byte(sym.Kind))
		if sym.Global {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	w(uint64(len(f.Relocs)))
	for _, r := range f.Relocs {
		w(r.Off)
		buf.WriteByte(byte(r.Kind))
		ws(r.Symbol)
		w(uint64(r.Addend))
	}
	w(uint64(len(f.Needed)))
	for _, n := range f.Needed {
		ws(n)
	}
	return buf.Bytes()
}

// Unmarshal parses a serialized DELF file.
func Unmarshal(data []byte) (*File, error) {
	r := &reader{data: data}
	var magic [4]byte
	copy(magic[:], r.bytes(4))
	if r.err != nil || magic != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFile)
	}
	if v := r.u64(); v != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	f := &File{Type: Type(r.u8())}
	f.Name = r.str()
	f.Entry = r.u64()
	nsec := r.u64()
	if r.err == nil && nsec > uint64(len(data)) {
		return nil, fmt.Errorf("%w: section count %d", ErrBadFile, nsec)
	}
	for i := uint64(0); i < nsec && r.err == nil; i++ {
		s := &Section{Name: r.str(), Addr: r.u64(), Size: r.u64(), Perm: Perm(r.u8())}
		n := r.u64()
		if r.err == nil && n > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section data length %d", ErrBadFile, n)
		}
		s.Data = append([]byte(nil), r.bytes(int(n))...)
		f.Sections = append(f.Sections, s)
	}
	nsym := r.u64()
	if r.err == nil && nsym > uint64(len(data)) {
		return nil, fmt.Errorf("%w: symbol count %d", ErrBadFile, nsym)
	}
	for i := uint64(0); i < nsym && r.err == nil; i++ {
		sym := Symbol{Name: r.str(), Value: r.u64(), Size: r.u64(),
			Kind: SymKind(r.u8()), Global: r.u8() != 0}
		f.Symbols = append(f.Symbols, sym)
	}
	nrel := r.u64()
	if r.err == nil && nrel > uint64(len(data)) {
		return nil, fmt.Errorf("%w: reloc count %d", ErrBadFile, nrel)
	}
	for i := uint64(0); i < nrel && r.err == nil; i++ {
		rel := Reloc{Off: r.u64(), Kind: RelKind(r.u8()), Symbol: r.str(), Addend: int64(r.u64())}
		f.Relocs = append(f.Relocs, rel)
	}
	nneed := r.u64()
	if r.err == nil && nneed > uint64(len(data)) {
		return nil, fmt.Errorf("%w: needed count %d", ErrBadFile, nneed)
	}
	for i := uint64(0); i < nneed && r.err == nil; i++ {
		f.Needed = append(f.Needed, r.str())
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFile, r.err)
	}
	return f, nil
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("truncated at offset %d (want %d bytes)", r.off, n)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.err = fmt.Errorf("string length %d exceeds file size", n)
		return ""
	}
	return string(r.bytes(int(n)))
}
