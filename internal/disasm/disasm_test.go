package disasm

import (
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
)

func build(t *testing.T, src string, libs ...*delf.File) *delf.File {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	exe, err := link.Executable("prog", []*asm.Object{obj}, libs...)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}

func TestLinearProgramIsOneBlock(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	mov r1, 1
	add r1, 2
	mov r0, 1
	syscall
`)
	cfg := Analyze(exe)
	if cfg.Count() != 1 {
		t.Fatalf("blocks = %d, want 1 (%+v)", cfg.Count(), cfg.Sorted())
	}
	b := cfg.Sorted()[0]
	if b.Addr != exe.Entry {
		t.Errorf("block at %#x, entry %#x", b.Addr, exe.Entry)
	}
	// 10+6+10+1 = 27 bytes.
	if b.Size != 27 {
		t.Errorf("block size = %d, want 27", b.Size)
	}
	if len(b.Succs) != 0 {
		t.Errorf("linear block has successors: %v", b.Succs)
	}
}

func TestBranchSplitsBlocks(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	cmp r1, 0          ; block 1: cmp + je
	je done
	add r1, 1          ; block 2: fall-through
done:
	mov r0, 1          ; block 3: branch target
	syscall
`)
	cfg := Analyze(exe)
	if cfg.Count() != 3 {
		t.Fatalf("blocks = %d, want 3: %+v", cfg.Count(), cfg.Sorted())
	}
	entry, ok := cfg.BlockAt(exe.Entry)
	if !ok {
		t.Fatal("no entry block")
	}
	if len(entry.Succs) != 2 {
		t.Fatalf("entry successors = %v, want 2", entry.Succs)
	}
	done, err := exe.Symbol("done")
	if err != nil {
		t.Fatal(err)
	}
	foundTarget := false
	for _, s := range entry.Succs {
		if s == done.Value {
			foundTarget = true
		}
	}
	if !foundTarget {
		t.Errorf("entry succs %v missing done %#x", entry.Succs, done.Value)
	}
}

func TestCallCreatesReturnBlock(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	call fn
	mov r0, 1         ; post-call block
	syscall
fn:
	ret
`)
	cfg := Analyze(exe)
	// _start block (just the call), post-call block, fn block.
	if cfg.Count() != 3 {
		t.Fatalf("blocks = %d: %+v", cfg.Count(), cfg.Sorted())
	}
}

func TestUnreachableFunctionStillCounted(t *testing.T) {
	// Function symbols seed the traversal, so never-called functions
	// (the gray blocks of Figure 2) appear in the static count.
	exe := build(t, `
.text
.global _start
_start:
	mov r0, 1
	syscall
dead_feature:
	mov r2, 9
	ret
`)
	cfg := Analyze(exe)
	dead, err := exe.Symbol("dead_feature")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.BlockAt(dead.Value); !ok {
		t.Fatalf("dead function not in CFG: %+v", cfg.Sorted())
	}
}

func TestPLTEntriesCounted(t *testing.T) {
	libObj, err := asm.Assemble(".text\n.global fnx\nfnx: ret\n")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := link.Library("l.so", []*asm.Object{libObj})
	if err != nil {
		t.Fatal(err)
	}
	exe := build(t, `
.text
.global _start
_start:
	call fnx@plt
	mov r0, 1
	syscall
`, lib)
	cfg := Analyze(exe)
	plt, err := exe.Section(delf.SecPLT)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.BlockAt(plt.Addr); !ok {
		t.Error("PLT entry block missing from CFG")
	}
}

func TestCoveringLookup(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	mov r1, 1
	mov r0, 1
	syscall
`)
	cfg := Analyze(exe)
	if b, ok := cfg.Covering(exe.Entry + 5); !ok || b.Addr != exe.Entry {
		t.Errorf("Covering mid-block = %v, %v", b, ok)
	}
	if _, ok := cfg.Covering(0x1); ok {
		t.Error("Covering outside code succeeded")
	}
}

func TestLoopBackEdge(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	mov r1, 0
loop:
	add r1, 1
	cmp r1, 10
	jl loop
	mov r0, 1
	syscall
`)
	cfg := Analyze(exe)
	loop, err := exe.Symbol("loop")
	if err != nil {
		t.Fatal(err)
	}
	lb, ok := cfg.BlockAt(loop.Value)
	if !ok {
		t.Fatalf("loop head not a block: %+v", cfg.Sorted())
	}
	selfEdge := false
	for _, s := range lb.Succs {
		if s == loop.Value {
			selfEdge = true
		}
	}
	if !selfEdge {
		t.Errorf("loop block succs = %v, missing back edge to %#x", lb.Succs, loop.Value)
	}
}

func TestBlocksDoNotOverlap(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	cmp r1, 0
	je a
	cmp r1, 1
	je b
	jmp c
a:
	mov r2, 1
	jmp c
b:
	mov r2, 2
c:
	mov r0, 1
	syscall
`)
	cfg := Analyze(exe)
	blocks := cfg.Sorted()
	for i := 1; i < len(blocks); i++ {
		prev, cur := blocks[i-1], blocks[i]
		if prev.Addr+prev.Size > cur.Addr {
			t.Errorf("blocks overlap: %#x+%d > %#x", prev.Addr, prev.Size, cur.Addr)
		}
	}
	if cfg.TotalBytes() == 0 {
		t.Error("TotalBytes = 0")
	}
}
