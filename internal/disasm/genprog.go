package disasm

import "github.com/dynacut/dynacut/internal/isa"

// GenProgram builds a structurally valid code section from a random
// seed: a chain of arithmetic blocks separated by forward branches,
// ending in RET. It drives this package's property tests and the
// kernel's FuzzBlockCacheDecode target, which replays generated
// programs through both execution engines and diffs the outcomes —
// one generator, two consumers, so decoder and translator are fuzzed
// over the same program distribution.
func GenProgram(seed []byte) []byte {
	var code []byte
	for _, b := range seed {
		switch b % 5 {
		case 0:
			code = isa.MustEncode(code, isa.Inst{Op: isa.OpMOVri, A: isa.Register(b % 16), Imm: int64(b)})
		case 1:
			code = isa.MustEncode(code, isa.Inst{Op: isa.OpADDri, A: isa.Register(b % 16), Imm: 1})
		case 2:
			code = isa.MustEncode(code, isa.Inst{Op: isa.OpCMPri, A: isa.Register(b % 16), Imm: 7})
		case 3:
			// Forward conditional branch over one NOP.
			code = isa.MustEncode(code, isa.Inst{Op: isa.OpJE, Imm: 1})
			code = isa.MustEncode(code, isa.Inst{Op: isa.OpNOP})
		case 4:
			code = isa.MustEncode(code, isa.Inst{Op: isa.OpNOP})
		}
	}
	return isa.MustEncode(code, isa.Inst{Op: isa.OpRET})
}
