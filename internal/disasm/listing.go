package disasm

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

// Listing renders an objdump-style disassembly of the binary's
// executable sections: function symbols as headers, one instruction
// per line with address, raw bytes and mnemonic. Undecodable bytes
// (e.g. after DynaCut wiped a block with INT3 the stream stays
// decodable, but arbitrary corruption may not) are rendered as .byte
// lines and decoding resumes at the next symbol.
func Listing(file *delf.File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\tfile format delf-%s\n", file.Name, strings.ToLower(file.Type.String()))

	// Symbol lookup by address for headers.
	funcAt := map[uint64]string{}
	for _, sym := range file.Symbols {
		if sym.Kind == delf.SymFunc {
			funcAt[sym.Value] = sym.Name
		}
	}

	var secs []*delf.Section
	for _, sec := range file.Sections {
		if sec.Perm&delf.PermX != 0 && len(sec.Data) > 0 {
			secs = append(secs, sec)
		}
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })

	for _, sec := range secs {
		fmt.Fprintf(&b, "\nDisassembly of section %s:\n", sec.Name)
		off := 0
		for off < len(sec.Data) {
			addr := sec.Addr + uint64(off)
			if name, ok := funcAt[addr]; ok {
				fmt.Fprintf(&b, "\n%016x <%s>:\n", addr, name)
			}
			in, err := isa.Decode(sec.Data[off:])
			if err != nil {
				fmt.Fprintf(&b, "%12x:\t%-24s\t.byte 0x%02x\n",
					addr, hexBytes(sec.Data[off:off+1]), sec.Data[off])
				off++
				continue
			}
			raw := sec.Data[off : off+in.Size]
			mnem := in.String()
			if tgt, ok := in.Target(addr); ok {
				if name, ok := funcAt[tgt]; ok {
					mnem += fmt.Sprintf("\t<%s>", name)
				} else {
					mnem += fmt.Sprintf("\t<%#x>", tgt)
				}
			}
			fmt.Fprintf(&b, "%12x:\t%-24s\t%s\n", addr, hexBytes(raw), mnem)
			off += in.Size
		}
	}
	return b.String()
}

func hexBytes(raw []byte) string {
	parts := make([]string, len(raw))
	for i, v := range raw {
		parts[i] = fmt.Sprintf("%02x", v)
	}
	return strings.Join(parts, " ")
}
