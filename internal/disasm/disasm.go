// Package disasm statically enumerates the basic blocks of a DELF
// binary — the role Angr plays in the paper's evaluation ("the number
// of total basic blocks of each binary is obtained using Angr"). It
// runs a recursive-descent traversal from the entry point and all
// function symbols, splitting blocks at branch targets, and reports
// the CFG's blocks with sizes.
package disasm

import (
	"sort"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

// Block is one static basic block.
type Block struct {
	Addr uint64
	Size uint64
	// Succs are the statically known successor block addresses
	// (direct branch targets and fall-throughs; indirect edges are
	// not resolved, as in any static CFG).
	Succs []uint64
}

// CFG is the static control-flow graph of one binary's executable
// sections.
type CFG struct {
	Blocks map[uint64]*Block
}

// Analyze builds the CFG of the executable sections (.text and .plt)
// of file.
func Analyze(file *delf.File) *CFG {
	cfg := &CFG{Blocks: map[uint64]*Block{}}

	regions := make(map[uint64][]byte)
	for _, sec := range file.Sections {
		if sec.Perm&delf.PermX != 0 && len(sec.Data) > 0 {
			regions[sec.Addr] = sec.Data
		}
	}
	read := func(addr uint64) ([]byte, bool) {
		for secAddr, data := range regions {
			if addr >= secAddr && addr < secAddr+uint64(len(data)) {
				return data[addr-secAddr:], true
			}
		}
		return nil, false
	}

	// Leaders: entry point, every function symbol in an executable
	// region, every direct branch target, every post-branch
	// fall-through.
	leaders := map[uint64]bool{}
	if file.Type == delf.TypeExec && file.Entry != 0 {
		leaders[file.Entry] = true
	}
	for _, sym := range file.Symbols {
		if sym.Kind == delf.SymFunc {
			if _, ok := read(sym.Value); ok {
				leaders[sym.Value] = true
			}
		}
	}

	// Pass 1: linear decode from each leader, discovering new leaders
	// (branch targets), iterating to fixpoint.
	work := make([]uint64, 0, len(leaders))
	for a := range leaders {
		work = append(work, a)
	}
	visited := map[uint64]bool{}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[addr] {
			continue
		}
		visited[addr] = true
		codeAt, ok := read(addr)
		if !ok {
			continue
		}
		off := 0
		for off < len(codeAt) {
			in, err := isa.Decode(codeAt[off:])
			if err != nil {
				break
			}
			iaddr := addr + uint64(off)
			if tgt, ok := in.Target(iaddr); ok {
				if _, mapped := read(tgt); mapped && !leaders[tgt] {
					leaders[tgt] = true
					work = append(work, tgt)
				}
			}
			off += in.Size
			if in.Op.IsBranch() {
				next := addr + uint64(off)
				if _, mapped := read(next); mapped {
					if in.Op.IsCond() || in.Op == isa.OpCALL || in.Op == isa.OpCALLr {
						if !leaders[next] {
							leaders[next] = true
							work = append(work, next)
						}
					}
				}
				break
			}
		}
	}

	// Pass 2: emit blocks from every leader to the next leader or
	// terminating branch.
	sorted := make([]uint64, 0, len(leaders))
	for a := range leaders {
		sorted = append(sorted, a)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	isLeader := leaders

	for _, start := range sorted {
		codeAt, ok := read(start)
		if !ok {
			continue
		}
		blk := &Block{Addr: start}
		off := 0
		for off < len(codeAt) {
			in, err := isa.Decode(codeAt[off:])
			if err != nil {
				break
			}
			iaddr := start + uint64(off)
			if iaddr != start && isLeader[iaddr] {
				// Block falls through into the next leader.
				blk.Succs = append(blk.Succs, iaddr)
				break
			}
			off += in.Size
			if in.Op.IsBranch() {
				if tgt, ok := in.Target(iaddr); ok {
					blk.Succs = append(blk.Succs, tgt)
				}
				next := start + uint64(off)
				if in.Op.IsCond() || in.Op == isa.OpCALL || in.Op == isa.OpCALLr {
					if _, mapped := read(next); mapped {
						blk.Succs = append(blk.Succs, next)
					}
				}
				break
			}
		}
		blk.Size = uint64(off)
		if blk.Size > 0 {
			cfg.Blocks[start] = blk
		}
	}
	return cfg
}

// Count returns the number of static basic blocks (the "total BB #"
// row of Figure 9).
func (c *CFG) Count() int { return len(c.Blocks) }

// TotalBytes sums the block sizes.
func (c *CFG) TotalBytes() uint64 {
	var n uint64
	for _, b := range c.Blocks {
		n += b.Size
	}
	return n
}

// Sorted returns blocks in address order.
func (c *CFG) Sorted() []*Block {
	out := make([]*Block, 0, len(c.Blocks))
	for _, b := range c.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// BlockAt returns the block starting at addr.
func (c *CFG) BlockAt(addr uint64) (*Block, bool) {
	b, ok := c.Blocks[addr]
	return b, ok
}

// Covering returns the block containing addr (not necessarily at its
// start), for mapping mid-block fault addresses back to blocks.
func (c *CFG) Covering(addr uint64) (*Block, bool) {
	for _, b := range c.Blocks {
		if addr >= b.Addr && addr < b.Addr+b.Size {
			return b, true
		}
	}
	return nil, false
}
