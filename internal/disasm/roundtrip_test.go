package disasm

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/isa"
)

// buildTB/linkTB mirror build for fuzz targets (testing.TB).
func buildTB(t testing.TB, src string) *delf.File {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return linkTB(t, obj)
}

func linkTB(t testing.TB, obj *asm.Object) *delf.File {
	t.Helper()
	exe, err := link.Executable("prog", []*asm.Object{obj})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}

// textOf extracts the linked executable's .text bytes.
func textOf(t testing.TB, src string) []byte {
	exe := buildTB(t, src)
	for _, sec := range exe.Sections {
		if sec.Name == ".text" {
			return sec.Data
		}
	}
	t.Fatal("no .text section")
	return nil
}

// midBlockJumpSrc has branch targets that land in the middle of what
// a linear scan would call one block — the shape DynaCut's INT3 block
// surgery must never mis-decode.
const midBlockJumpSrc = `
.text
.global _start
_start:
	mov r1, 0
loop:
	add r1, 1
	cmp r1, 5
	jne loop
	je mid
	nop
mid:
	mov r0, 1
	syscall
	ret
`

// FuzzDecodeEncodeRoundTrip: for arbitrary byte streams, every
// successfully decoded instruction must re-encode to exactly the
// bytes it was decoded from, and every failure must be one of the
// three typed decode errors — never a panic, never an overrun.
func FuzzDecodeEncodeRoundTrip(f *testing.F) {
	f.Add([]byte{0xCC}) // 1-byte INT3: the block-wipe fill byte
	text := textOf(f, midBlockJumpSrc)
	f.Add(text)
	if len(text) > 3 {
		f.Add(text[:len(text)-3]) // truncated final instruction
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, code []byte) {
		off := 0
		for off < len(code) {
			in, err := isa.Decode(code[off:])
			if err != nil {
				if !errors.Is(err, isa.ErrBadOpcode) && !errors.Is(err, isa.ErrTruncated) &&
					!errors.Is(err, isa.ErrBadOperand) {
					t.Fatalf("decode at %d: untyped error %v", off, err)
				}
				off++ // resync one byte, like the listing renderer
				continue
			}
			if in.Size <= 0 || off+in.Size > len(code) {
				t.Fatalf("decode at %d claims %d bytes of %d", off, in.Size, len(code)-off)
			}
			re, err := isa.Encode(nil, in)
			if err != nil {
				t.Fatalf("decoded instruction %v does not re-encode: %v", in, err)
			}
			if !bytes.Equal(re, code[off:off+in.Size]) {
				t.Fatalf("round trip at %d: %x -> %v -> %x", off, code[off:off+in.Size], in, re)
			}
			off += in.Size
		}
	})
}

// genAsmProgram deterministically derives an assembly program from fuzz
// bytes: a label before every instruction, jumps targeting labels
// chosen by the input (often mid-run, splitting would-be blocks).
func genAsmProgram(data []byte) string {
	if len(data) == 0 {
		data = []byte{0}
	}
	n := len(data)
	var b strings.Builder
	b.WriteString(".text\n.global _start\n_start:\n")
	for i, d := range data {
		fmt.Fprintf(&b, "L%d:\n", i)
		reg := 1 + int(d>>4)%4
		switch d % 8 {
		case 0:
			b.WriteString("\tnop\n")
		case 1:
			fmt.Fprintf(&b, "\tmov r%d, %d\n", reg, int(d)*3)
		case 2:
			fmt.Fprintf(&b, "\tadd r%d, %d\n", reg, int(d))
		case 3:
			fmt.Fprintf(&b, "\tcmp r%d, %d\n", reg, int(d)%7)
		case 4:
			fmt.Fprintf(&b, "\tje L%d\n", (i+int(d)/8)%n)
		case 5:
			fmt.Fprintf(&b, "\tjne L%d\n", (i*3+int(d))%n)
		case 6:
			fmt.Fprintf(&b, "\tjmp L%d\n", (i+1+int(d))%n)
		case 7:
			fmt.Fprintf(&b, "\tsub r%d, 1\n", reg)
		}
	}
	b.WriteString("\tret\n")
	return b.String()
}

// FuzzAssembleDisassembleReassemble is the toolchain round trip: a
// generated program is assembled and linked, its .text disassembled
// as a linear stream, and re-encoding that stream must reproduce the
// section byte-identically with no undecoded gap. The CFG built from
// the same binary must put every block boundary on an instruction
// boundary.
func FuzzAssembleDisassembleReassemble(f *testing.F) {
	f.Add([]byte{0xCC})
	f.Add([]byte{4, 12, 20, 28, 36, 44}) // all-jump program
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		src := genAsmProgram(data)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		exe := linkTB(t, obj)
		var text []byte
		var base uint64
		for _, sec := range exe.Sections {
			if sec.Name == ".text" {
				text, base = sec.Data, sec.Addr
			}
		}
		insts, addrs := isa.Disassemble(text, base)
		total := 0
		re := make([]byte, 0, len(text))
		for _, in := range insts {
			total += in.Size
			re = isa.MustEncode(re, in)
		}
		if total != len(text) {
			t.Fatalf("disassembly stopped at %d of %d bytes", total, len(text))
		}
		if !bytes.Equal(re, text) {
			t.Fatalf("reassembled .text differs:\n got %x\nwant %x", re, text)
		}

		boundaries := map[uint64]bool{}
		for _, a := range addrs {
			boundaries[a] = true
		}
		cfg := Analyze(exe)
		for _, blk := range cfg.Sorted() {
			if blk.Addr >= base && blk.Addr < base+uint64(len(text)) && !boundaries[blk.Addr] {
				t.Fatalf("CFG block at %#x is not on an instruction boundary", blk.Addr)
			}
		}
		if lst := Listing(exe); !strings.Contains(lst, "_start") {
			t.Fatal("listing lost the entry symbol")
		}
	})
}

// TestInt3WipeKeepsStreamDecodable is the property DynaCut's block
// surgery depends on: overwriting any instruction run with INT3 fill
// leaves the rest of the stream decodable at the same boundaries.
func TestInt3WipeKeepsStreamDecodable(t *testing.T) {
	text := append([]byte(nil), textOf(t, midBlockJumpSrc)...)
	// Wipe a middle run that crosses instruction boundaries.
	lo, hi := 10, len(text)-2
	for i := lo; i < hi; i++ {
		text[i] = 0xCC
	}
	off := 0
	for off < len(text) {
		in, err := isa.Decode(text[off:])
		if err != nil {
			// Only the instruction torn at the wipe's start may break;
			// resync must succeed within its original length.
			off++
			continue
		}
		off += in.Size
	}
	if off != len(text) {
		t.Fatalf("stream ends mid-instruction after INT3 wipe: %d of %d", off, len(text))
	}
}
