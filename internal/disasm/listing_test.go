package disasm

import (
	"strings"
	"testing"
)

func TestListingRendersFunctionsAndTargets(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	mov r1, 7
	call helper
	mov r0, 1
	syscall
helper:
	add r1, 1
	ret
`)
	out := Listing(exe)
	for _, want := range []string{
		"Disassembly of section .text",
		"<_start>:",
		"<helper>:",
		"mov r1, 7",
		"call",
		"ret",
		"file format delf-exec",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// The call should resolve its target symbolically.
	callLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "\tcall") {
			callLine = line
		}
	}
	if !strings.Contains(callLine, "<helper>") {
		t.Errorf("call target not symbolized: %q", callLine)
	}
}

func TestListingHandlesUndecodableBytes(t *testing.T) {
	exe := build(t, ".text\n.global _start\n_start:\n\tret\n")
	text, err := exe.Section(".text")
	if err != nil {
		t.Fatal(err)
	}
	text.Data = append(text.Data, 0xFF, 0xEE) // junk after the ret
	text.Size = uint64(len(text.Data))
	out := Listing(exe)
	if !strings.Contains(out, ".byte 0xff") || !strings.Contains(out, ".byte 0xee") {
		t.Errorf("junk bytes not rendered:\n%s", out)
	}
}

func TestListingShowsINT3Patches(t *testing.T) {
	exe := build(t, `
.text
.global _start
_start:
	mov r1, 7
	ret
`)
	text, err := exe.Section(".text")
	if err != nil {
		t.Fatal(err)
	}
	text.Data[0] = 0xCC // DynaCut-style entry patch
	out := Listing(exe)
	if !strings.Contains(out, "int3") {
		t.Errorf("patched int3 not visible:\n%s", out)
	}
}
