package disasm

import (
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/delf"
)

func fileFor(code []byte) *delf.File {
	return &delf.File{
		Type:  delf.TypeExec,
		Name:  "gen",
		Entry: 0x400000,
		Sections: []*delf.Section{{
			Name: delf.SecText, Addr: 0x400000, Size: uint64(len(code)),
			Perm: delf.PermR | delf.PermX, Data: code,
		}},
		Symbols: []delf.Symbol{{
			Name: "_start", Value: 0x400000, Size: uint64(len(code)),
			Kind: delf.SymFunc, Global: true,
		}},
	}
}

// Property: for generated programs, the CFG's blocks never overlap,
// stay within .text, and every direct successor is a block leader.
func TestQuickCFGInvariants(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		if len(seed) > 200 {
			seed = seed[:200]
		}
		code := GenProgram(seed)
		cfg := Analyze(fileFor(code))
		if cfg.Count() == 0 {
			return false
		}
		blocks := cfg.Sorted()
		end := uint64(0x400000) + uint64(len(code))
		for i, b := range blocks {
			if b.Addr < 0x400000 || b.Addr+b.Size > end {
				return false
			}
			if i > 0 && blocks[i-1].Addr+blocks[i-1].Size > b.Addr {
				return false
			}
			for _, s := range b.Succs {
				if _, ok := cfg.BlockAt(s); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: total block bytes never exceed the section size, and the
// entry block always exists.
func TestQuickCFGCoverage(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		if len(seed) > 100 {
			seed = seed[:100]
		}
		code := GenProgram(seed)
		cfg := Analyze(fileFor(code))
		if cfg.TotalBytes() > uint64(len(code)) {
			return false
		}
		_, ok := cfg.BlockAt(0x400000)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
