GO ?= go

.PHONY: all build test vet race chaos fuzz check bench supervise-demo

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector. The chaos tests run here too —
# their seeds are fixed in-source, so failures reproduce exactly.
race:
	$(GO) test -race ./...

# Just the fault-injection / transactional-rewrite suites, plus the
# observability assertions that every injected fault lands in the
# trace. Runs vet first: the chaos gate is also the lint gate.
chaos: vet
	$(GO) test -race -run 'Chaos|Rollback|Rolls|Transient|Retried|Revalidated|Corrupt|BitFlip|Truncation|Observer|Overflow|Supervisor|Breaker|Storm' \
		./internal/core/ ./internal/criu/ ./internal/faultinject/ ./internal/obs/ ./internal/supervise/ .

# Short fuzz smoke over the image decoder (corpus seeds always run
# as part of `test`; this adds a few seconds of mutation).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshalImages -fuzztime 10s ./internal/criu/

# The tier-1 gate: everything that must pass before a commit.
check: build vet test race

# Perf trajectory: run the headline figure benchmarks plus the
# incremental-checkpoint benchmark and record the numbers as JSON so
# each PR's results are comparable to the last (BENCH_pr2.json here on).
BENCH_JSON ?= BENCH_pr4.json

bench:
	$(GO) test -run '^$$' -bench 'Figure6_|Figure7_|Figure8_|IncrementalDump|Observer_|SupervisorOverhead' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# The historical full sweep (every figure, table, ablation and micro).
bench-all:
	$(GO) test -bench . -benchmem .

# One traced rewrite under fault injection: prints the phase summary
# and writes the JSONL trace next to the benchmark records.
trace-demo:
	$(GO) run ./cmd/tracedemo -o trace.jsonl

# The closed loop end to end: disable a feature through the
# supervisor, drive a trap storm, and watch the degradation ladder
# re-enable it and open its circuit breaker.
supervise-demo:
	$(GO) run ./cmd/supervisedemo
