GO ?= go

.PHONY: all build test vet race chaos fuzz check bench cover supervise-demo fleet-demo load-demo

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector. The chaos tests run here too —
# their seeds are fixed in-source, so failures reproduce exactly.
race:
	$(GO) test -race ./...

# Just the fault-injection / transactional-rewrite suites, plus the
# observability assertions that every injected fault lands in the
# trace. Runs vet first and the coverage floor last: the chaos gate is
# also the lint and coverage gate.
chaos: vet
	$(GO) test -race -run 'Chaos|Rollback|Rolls|Transient|Retried|Revalidated|Corrupt|BitFlip|Truncation|Observer|Overflow|Supervisor|Breaker|Storm|Fleet|Controller|Journal|Lease|MidWave|Pristine|PageStore|LivePatch|InstallHandler|CountPatched|Attest|Scrub|Quarantine|Repair|Lockstep|Translate|BlockCache|FlipBits' \
		./internal/core/ ./internal/criu/ ./internal/faultinject/ ./internal/fleet/ ./internal/kernel/ ./internal/obs/ ./internal/supervise/ .
	$(GO) test -race -run 'Driver|Pool|Merge|Schedule|Ramp|Poisson|TraceCSV|Histogram|Mix|RolloutUnderLoad|SteadyState|HaltReleases|ConfigValidation|LivePatch|Scrub' \
		./internal/loadgen/ ./internal/slo/
	$(MAKE) cover

# Whole-suite statement coverage against the checked-in floor
# (COVERAGE_FLOOR). Raise the floor when coverage rises; the gate
# fails if a change drops below it.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./... > /dev/null
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat COVERAGE_FLOOR); \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { \
		if (t + 0 < f + 0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# Short fuzz smoke over the image decoder, the rollout-journal
# decoder, and the basic-block translator (corpus seeds always run as
# part of `test`; this adds a few seconds of mutation each).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshalImages -fuzztime 10s ./internal/criu/
	$(GO) test -run '^$$' -fuzz FuzzDecodeJournal -fuzztime 10s ./internal/fleet/
	$(GO) test -run '^$$' -fuzz FuzzBlockCacheDecode -fuzztime 10s ./internal/kernel/

# The tier-1 gate: everything that must pass before a commit.
check: build vet test race

# Perf trajectory: run the headline figure benchmarks plus the
# incremental-checkpoint benchmark and record the numbers as JSON so
# each PR's results are comparable to the last (BENCH_pr2.json here on).
BENCH_JSON ?= BENCH_pr10.json

bench:
	$(GO) test -run '^$$' -bench 'Figure6_|Figure7_|Figure8_|IncrementalDump|Observer_|SupervisorOverhead|FleetRollout|FleetControllerScale|PageStoreParallel|RewriteUnderLoad|ExecEngine' -benchmem -benchtime 1x . ./internal/criu/ \
		| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# The historical full sweep (every figure, table, ablation and micro).
bench-all:
	$(GO) test -bench . -benchmem .

# One traced rewrite under fault injection: prints the phase summary
# and writes the JSONL trace next to the benchmark records.
trace-demo:
	$(GO) run ./cmd/tracedemo -o trace.jsonl

# The closed loop end to end: disable a feature through the
# supervisor, drive a trap storm, and watch the degradation ladder
# re-enable it and open its circuit breaker.
supervise-demo:
	$(GO) run ./cmd/supervisedemo

# Fleet-scale customization end to end: CoW replicas over the shared
# page store, staged canary/wave rollout, halt-and-restore on a
# sabotaged replica (tune with -replicas/-failat), or controller
# crash-and-resume from the rollout journal (-crash N).
fleet-demo:
	$(GO) run ./cmd/fleetdemo

# The staged rollout again, but measured from the traffic's side:
# open-loop load (constant/ramp/poisson/trace schedules) runs against
# every replica while the rollout rewrites them, and the SLO table
# cross-checks each replica's journal-stamped downtime against the
# service gap the load generator observed.
load-demo:
	$(GO) run ./cmd/fleetdemo -load
