module github.com/dynacut/dynacut

go 1.22
