package dynacut

import (
	"errors"
	"strings"
	"testing"
)

// profileWebDAV boots the web server and profiles the WebDAV write
// feature (PUT/DELETE) as undesired.
func profileWebDAV(t *testing.T, port uint16) (*Session, []AbsBlock, uint64) {
	t.Helper()
	sess, _ := startWebSession(t, WebServerConfig{Port: port})
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("no feature blocks")
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	return sess, blocks, errAddr
}

// TestCanaryDetectsBadCustomization is the end-to-end failure-model
// demo: the operator disables the blocks that serve GET, the canary
// health check (a GET probe) fails after restore, and the transaction
// rolls the guest back to the pre-edit images — GET keeps working.
func TestCanaryDetectsBadCustomization(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8090})
	// Deliberately inverted profile: GET is "undesired".
	blocks, err := sess.ProfileFeatures(
		[]string{"PUT /f data\n", "DELETE /f\n"},
		[]string{"GET /\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("no GET-only blocks")
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	cust, err := NewCustomizer(sess.Machine, sess.PID(), CustomizerOptions{
		RedirectTo:  errAddr,
		HealthCheck: sess.CanaryProbe("GET /\n", "200"),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cust.DisableBlocks("get", blocks, PolicyBlockEntry)
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("disabling GET with a GET canary -> %v, want ErrRolledBack", err)
	}
	if !stats.RolledBack {
		t.Error("stats.RolledBack = false after rollback")
	}
	if errors.Is(err, ErrRollbackFailed) {
		t.Fatalf("rollback failed: %v", err)
	}
	// The rolled-back guest serves GET as before.
	resp, err := sess.Request("GET /\n")
	if err != nil || !strings.Contains(resp, "200") {
		t.Fatalf("GET after rollback -> %q, %v", resp, err)
	}
}

// TestFaultInjectedRestoreRollsBackThenSucceeds drives the public
// chaos surface: a seeded injector kills the first restore, the guest
// rolls back and keeps serving, and a clean retry commits.
func TestFaultInjectedRestoreRollsBackThenSucceeds(t *testing.T) {
	sess, blocks, errAddr := profileWebDAV(t, 8091)
	in := NewFaultInjector(42)
	in.FailRestoreAtStep(2)
	sess.Machine.SetFaultHook(in)

	cust, err := NewCustomizer(sess.Machine, sess.PID(), CustomizerOptions{
		RedirectTo:  errAddr,
		HealthCheck: sess.CanaryProbe("GET /\n", "200"),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cust.DisableBlocks("webdav", blocks, PolicyBlockEntry)
	switch {
	case !errors.Is(err, ErrRolledBack):
		t.Fatalf("err = %v, want ErrRolledBack", err)
	case !errors.Is(err, ErrRestoreFailed):
		t.Fatalf("err = %v, want ErrRestoreFailed in chain", err)
	case !errors.Is(err, ErrFaultInjected):
		t.Fatalf("err = %v, want ErrFaultInjected in chain", err)
	}
	if !stats.RolledBack || in.Injected() == 0 {
		t.Fatalf("RolledBack=%v injected=%d", stats.RolledBack, in.Injected())
	}
	// Rolled back: both features still served by the original images.
	if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
		t.Fatalf("GET after rollback -> %q (LastErr %v)", resp, sess.LastErr)
	}
	if resp := sess.MustRequest("PUT /f x\n"); !strings.Contains(resp, "201") {
		t.Fatalf("PUT after rollback -> %q", resp)
	}

	// The injector is spent (one-shot plan): the retry commits.
	cust, err = NewCustomizer(sess.Machine, cust.PID(), CustomizerOptions{
		RedirectTo:  errAddr,
		HealthCheck: sess.CanaryProbe("GET /\n", "200"),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err = cust.DisableBlocks("webdav", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	if stats.RolledBack || stats.BlocksPatched == 0 {
		t.Fatalf("retry stats: %+v", stats)
	}
	if resp := sess.MustRequest("PUT /f x\n"); !strings.Contains(resp, "403") {
		t.Fatalf("PUT after customization -> %q", resp)
	}
	if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
		t.Fatalf("GET after customization -> %q", resp)
	}
}

// TestMaxAttemptsRetriesTransientFault: with MaxAttempts 2 a
// transient restore fault is absorbed; the rewrite commits on the
// second attempt and reports it.
func TestMaxAttemptsRetriesTransientFault(t *testing.T) {
	sess, blocks, errAddr := profileWebDAV(t, 8092)
	in := NewFaultInjector(7)
	in.FailTransient("criu.restore.", 1, 1)
	sess.Machine.SetFaultHook(in)

	cust, err := NewCustomizer(sess.Machine, sess.PID(), CustomizerOptions{
		RedirectTo:  errAddr,
		MaxAttempts: 2,
		HealthCheck: sess.CanaryProbe("GET /\n", "200"),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cust.DisableBlocks("webdav", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("rewrite with retry budget: %v", err)
	}
	if stats.Attempts != 2 || stats.RolledBack {
		t.Fatalf("Attempts=%d RolledBack=%v, want 2/false", stats.Attempts, stats.RolledBack)
	}
	if resp := sess.MustRequest("PUT /f x\n"); !strings.Contains(resp, "403") {
		t.Fatalf("PUT after retried customization -> %q", resp)
	}
}

// TestUnmarshalImagesRejectsCorruption: the public decode path
// refuses checksum-violating blobs before anything touches a guest.
func TestUnmarshalImagesRejectsCorruption(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8093})
	set, err := Dump(sess.Machine, sess.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	blob := set.Marshal()
	if _, err := UnmarshalImages(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	blob[len(blob)/2] ^= 0x01
	_, err = UnmarshalImages(blob)
	if !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("corrupt blob -> %v, want ErrCorruptImage", err)
	}
	// The guest was never touched.
	if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
		t.Fatalf("GET -> %q", resp)
	}
}

// TestRequestRecordsLastErr: Request and MustRequest both leave the
// outcome in LastErr so MustRequest callers can still diagnose.
func TestRequestRecordsLastErr(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8094})
	if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
		t.Fatalf("GET -> %q", resp)
	}
	if sess.LastErr != nil {
		t.Fatalf("LastErr after success: %v", sess.LastErr)
	}
	// Point the session at a port nobody listens on.
	goodPort := sess.Port
	sess.Port = 9999
	if got := sess.MustRequest("GET /\n"); got != "" {
		t.Fatalf("MustRequest to dead port = %q", got)
	}
	if sess.LastErr == nil {
		t.Fatal("LastErr not recorded for failed MustRequest")
	}
	sess.Port = goodPort
	if _, err := sess.Request("GET /\n"); err != nil || sess.LastErr != nil {
		t.Fatalf("recovery request: %v / LastErr %v", err, sess.LastErr)
	}
}

// TestStartServerAutoServesImmediately is the regression for the
// missing post-boot drain: the first request right after
// StartServerAuto must succeed (the guest is parked on accept).
func TestStartServerAutoServesImmediately(t *testing.T) {
	app, err := BuildWebServer(WebServerConfig{Port: 8095})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServerAuto(app.Exe, []*Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sess.Request("GET /\n")
	if err != nil || !strings.Contains(resp, "200") {
		t.Fatalf("first request after StartServerAuto -> %q, %v", resp, err)
	}
}
