package dynacut

import (
	"errors"
	"strings"
	"testing"
)

// TestStartServerBootTimeout: a guest that never nudges must fail
// with ErrBootTimeout instead of spinning forever.
func TestStartServerBootTimeout(t *testing.T) {
	exe, err := Assemble("silent", `
.text
.global _start
_start:
	mov r0, 1
	mov r1, 0
	syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = StartServer(exe, nil, 1234)
	if !errors.Is(err, ErrBootTimeout) {
		t.Fatalf("err = %v, want ErrBootTimeout", err)
	}
}

// TestStartServerCrashDuringBoot reports the boot failure details.
func TestStartServerCrashDuringBoot(t *testing.T) {
	exe, err := Assemble("crasher", `
.text
.global _start
_start:
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = StartServer(exe, nil, 1234)
	if err == nil || !strings.Contains(err.Error(), "SIGSEGV") {
		t.Fatalf("err = %v, want boot failure mentioning SIGSEGV", err)
	}
}

// TestSessionSnapshotPhaseIsolation: consecutive snapshots don't
// leak blocks into each other.
func TestSessionSnapshotPhaseIsolation(t *testing.T) {
	app, err := BuildWebServer(WebServerConfig{Port: 8080})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServer(app.Exe, []*Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Request("GET /\n"); err != nil {
		t.Fatal(err)
	}
	g1, err := sess.SnapshotPhase("one")
	if err != nil {
		t.Fatal(err)
	}
	// No traffic between snapshots: the second one is (nearly) empty;
	// only residual accept-loop blocks may appear.
	g2, err := sess.SnapshotPhase("two")
	if err != nil {
		t.Fatal(err)
	}
	if g1.Count() == 0 {
		t.Fatal("first snapshot empty")
	}
	if g2.Count() >= g1.Count() {
		t.Fatalf("snapshot leak: %d then %d", g1.Count(), g2.Count())
	}
}

// TestStartServerAuto boots a server that issues no explicit nudge:
// init-end detection comes entirely from the first accept syscall.
func TestStartServerAuto(t *testing.T) {
	// A minimal accept-loop server without any nudge call.
	exe, err := Assemble("nudgeless", `
.text
.global _start
_start:
	; real initialization work (loops => completed basic blocks)
	mov r7, 0
init_loop:
	add r7, 3
	cmp r7, 30
	jl init_loop
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 7171
	syscall
loop:
	mov r0, 7
	mov r1, r8
	syscall
	mov r9, r0
	mov r0, 3
	mov r1, r9
	mov r2, =buf
	mov r3, 16
	syscall
	mov r0, 2
	mov r1, r9
	lea r2, resp
	mov r3, 3
	syscall
	mov r0, 8
	mov r1, r9
	syscall
	jmp loop
.rodata
resp: .ascii "ok\n"
.bss
buf: .space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServerAuto(exe, nil, 7171)
	if err != nil {
		t.Fatalf("StartServerAuto: %v", err)
	}
	if sess.InitLog == nil || len(sess.InitLog.Blocks) == 0 {
		t.Fatal("no init coverage from auto detection")
	}
	resp, err := sess.Request("hello\n")
	if err != nil || !strings.Contains(resp, "ok") {
		t.Fatalf("request -> %q, %v", resp, err)
	}
}

// TestSessionSymbolAddrErrors.
func TestSessionSymbolAddrErrors(t *testing.T) {
	app, err := BuildWebServer(WebServerConfig{Port: 8080})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServer(app.Exe, []*Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SymbolAddr("resp_403"); err != nil {
		t.Errorf("resp_403: %v", err)
	}
	if _, err := sess.SymbolAddr("no_such_symbol"); err == nil {
		t.Error("missing symbol resolved")
	}
}

// TestCanaryProbePreservesLastErr: the canary health probe runs in
// the middle of a rewrite transaction; it must not clobber the
// LastErr a caller is tracking across the rewrite (regression: the
// probe used to go through s.Request, which overwrites LastErr).
func TestCanaryProbePreservesLastErr(t *testing.T) {
	app, err := BuildWebServer(WebServerConfig{Port: 8080})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServer(app.Exe, []*Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	probe := sess.CanaryProbe("GET /\n", "200")
	probeRan := false
	cust, err := NewCustomizer(sess.Machine, sess.PID(), CustomizerOptions{
		RedirectTo: errAddr,
		HealthCheck: func(m *Machine, pid int) error {
			probeRan = true
			return probe(m, pid)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("sentinel: pre-rewrite outcome")
	sess.LastErr = sentinel
	if _, err := cust.DisableBlocks("webdav", blocks, PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	if !probeRan {
		t.Fatal("canary probe never ran")
	}
	if sess.LastErr != sentinel {
		t.Fatalf("LastErr clobbered by canary probe: %v", sess.LastErr)
	}
	if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
		t.Fatalf("GET after canaried rewrite -> %q", resp)
	}
}

// TestRequestDrainsMultiSegmentResponse: a guest that writes its
// response in several widely-spaced segments (here one byte every
// ~36k ticks, wider than the old fixed 20k-tick drain) must still
// yield the complete response (regression: requestOnce drained a
// fixed window after the first byte and truncated the rest).
func TestRequestDrainsMultiSegmentResponse(t *testing.T) {
	exe, err := Assemble("slowwriter", `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 7373
	syscall
	mov r0, 15
	mov r1, 0
	syscall              ; nudge: init done
loop:
	mov r0, 7
	mov r1, r8
	syscall
	mov r9, r0
	mov r0, 3
	mov r1, r9
	mov r2, =buf
	mov r3, 16
	syscall
	; respond "SLOW!" one byte at a time, spinning between bytes
	mov r14, 0
seg:
	mov r10, 0
spin:
	add r10, 1
	cmp r10, 12000
	jl spin
	lea r2, resp
	add r2, r14
	mov r0, 2
	mov r1, r9
	mov r3, 1
	syscall
	add r14, 1
	cmp r14, 5
	jl seg
	mov r0, 8
	mov r1, r9
	syscall
	jmp loop
.rodata
resp: .ascii "SLOW!"
.bss
buf: .space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServer(exe, nil, 7373)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sess.Request("ping\n")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "SLOW!" {
		t.Fatalf("response = %q, want %q (truncated drain?)", resp, "SLOW!")
	}
}

// TestMustRequestSwallowsErrors.
func TestMustRequestSwallowsErrors(t *testing.T) {
	app, err := BuildWebServer(WebServerConfig{Port: 8080})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServer(app.Exe, []*Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Machine.Kill(sess.PID()); err != nil {
		t.Fatal(err)
	}
	if got := sess.MustRequest("GET /\n"); got != "" {
		t.Fatalf("MustRequest on dead server = %q", got)
	}
}

// TestRequestReportsTruncatedResponse: a guest that drips response
// bytes forever without ever closing the connection must exhaust the
// per-request instruction budget; Request has to surface the partial
// body alongside ErrTruncatedResponse instead of passing the
// truncation off as a complete response (regression: budget
// exhaustion used to return the partial body with a nil error,
// indistinguishable from success).
func TestRequestReportsTruncatedResponse(t *testing.T) {
	exe, err := Assemble("dripd", `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 7474
	syscall
	mov r0, 15
	mov r1, 0
	syscall              ; nudge: init done
	mov r0, 7
	mov r1, r8
	syscall
	mov r9, r0
	mov r0, 3
	mov r1, r9
	mov r2, =buf
	mov r3, 16
	syscall
drip:                    ; one "." every ~36k ticks, forever, no close
	mov r10, 0
spin:
	add r10, 1
	cmp r10, 12000
	jl spin
	mov r0, 2
	mov r1, r9
	lea r2, dot
	mov r3, 1
	syscall
	jmp drip
.rodata
dot: .ascii "."
.bss
buf: .space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServer(exe, nil, 7474)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sess.Request("ping\n")
	if !errors.Is(err, ErrTruncatedResponse) {
		t.Fatalf("drip request error = %v, want ErrTruncatedResponse", err)
	}
	if len(resp) == 0 || strings.Trim(resp, ".") != "" {
		t.Fatalf("partial body = %q, want non-empty run of dots", resp)
	}
	if !errors.Is(sess.LastErr, ErrTruncatedResponse) {
		t.Fatalf("LastErr = %v, want ErrTruncatedResponse", sess.LastErr)
	}
}
