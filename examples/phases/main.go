// Phases example: Figure 10 in miniature. It walks the Lighttpd-like
// server through its lifecycle — vanilla boot, deployment (unused
// code and write features removed), post-initialization (init-only
// code removed), a short PUT/DELETE administration window, and back —
// and prints the fraction of basic blocks still "live" (reachable by
// an attacker) at each step, compared with static RAZOR- and
// CHISEL-style debloating, whose live fraction never changes.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/dynacut/dynacut"
)

var (
	wanted    = []string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /d\n", "BREW /\n"}
	undesired = []string{"PUT /f x\n", "DELETE /f\n"}
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{
		Name: "lighttpd", Port: 8080, InitRoutines: 24,
	})
	if err != nil {
		return err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}

	// Profile everything once. The trailing PUT→GET→DELETE cycle
	// covers the "serve stored content" path, which only executes
	// after something has been uploaded — trace-based debloating
	// keeps exactly what the profile exercises (§5's caveat).
	profile := append(append([]string{}, wanted...), undesired...)
	profile = append(profile, "PUT /f seed\n", "GET /f\n", "DELETE /f\n")
	for _, r := range profile {
		if _, err := sess.Request(r); err != nil {
			return err
		}
	}
	serving, err := sess.SnapshotPhase("serving")
	if err != nil {
		return err
	}
	initG := sess.InitGraph()
	full := dynacut.MergeGraphs(initG, serving)
	cfg := dynacut.AnalyzeCFG(app.Exe)
	total := float64(cfg.Count())

	// Static baselines: constant live fractions.
	razor, err := dynacut.RazorDebloat(app.Exe, full)
	if err != nil {
		return err
	}
	chisel, err := dynacut.ChiselDebloat(app.Exe, full)
	if err != nil {
		return err
	}

	unexec := dynacut.IdentifyUnexecutedBlocks(cfg, full, app.Config.Name)
	initOnly := dynacut.IdentifyInitBlocks(initG, serving, app.Config.Name)
	writeBlocks, err := sess.ProfileFeatures(wanted, undesired)
	if err != nil {
		return err
	}

	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo: errAddr,
	})
	if err != nil {
		return err
	}

	bar := func(pct float64) string {
		n := int(pct * 40)
		return strings.Repeat("#", n) + strings.Repeat(".", 40-n)
	}
	report := func(phase string) {
		live := (total - float64(cust.DisabledBlockCount())) / total
		fmt.Printf("%-24s |%s| %5.1f%% live\n", phase, bar(live), live*100)
	}

	fmt.Printf("lighttpd: %d static basic blocks\n", cfg.Count())
	fmt.Printf("%-24s |%s| %5.1f%% live (constant)\n", "RAZOR (static)", bar(razor.LiveFraction()), razor.LiveFraction()*100)
	fmt.Printf("%-24s |%s| %5.1f%% live (constant)\n\n", "CHISEL (static)", bar(chisel.LiveFraction()), chisel.LiveFraction()*100)

	report("boot (vanilla)")
	if _, err := cust.DisableBlocks("unexecuted", unexec, dynacut.PolicyBlockEntry); err != nil {
		return err
	}
	if _, err := cust.DisableBlocks("write-methods", writeBlocks, dynacut.PolicyBlockEntry); err != nil {
		return err
	}
	report("deployed read-only")
	if _, err := cust.DisableBlocks("init-code", initOnly, dynacut.PolicyBlockEntry); err != nil {
		return err
	}
	report("init code removed")

	if _, err := cust.EnableBlocks("write-methods"); err != nil {
		return err
	}
	report("PUT/DELETE window open")
	if resp := sess.MustRequest("PUT /f admin-upload\n"); !strings.Contains(resp, "201") {
		return fmt.Errorf("admin upload failed: %q", resp)
	}
	fmt.Println("    (admin uploaded /f during the window)")
	if _, err := cust.DisableBlocks("write-methods", writeBlocks, dynacut.PolicyBlockEntry); err != nil {
		return err
	}
	report("window closed")

	if resp := sess.MustRequest("GET /f\n"); !strings.Contains(resp, "admin-upload") {
		return fmt.Errorf("uploaded file lost: %q", resp)
	}
	fmt.Println("\nthe uploaded file is still served; write paths are dark again.")
	return nil
}
