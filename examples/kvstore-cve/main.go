// kvstore-cve example: Table 1 of the paper in action. The
// Redis-like guest ships three deliberately planted memory-safety
// bugs mirroring real Redis CVEs (STRALGO LCS integer overflow,
// SETRANGE bounds miss, CONFIG SET overflow). The example first
// compromises a vanilla server, then shows DynaCut blocking the
// vulnerable commands at the dispatcher — the exploits bounce off
// with "-ERR" while GET/SET traffic continues.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/apps/kvstore"
)

type cve struct {
	id      string
	command string
	exploit string
	guard   string
	probe   string // benign use of the command, for profiling
}

var cves = []cve{
	{"CVE-2021-32625", "STRALGO", "STRALGO LCS " + strings.Repeat("A", 64) + "\n", "lcs_guard", "STRALGO LCS ab\n"},
	{"CVE-2019-10193", "SETRANGE", "SETRANGE z 64 OVERFLOW!\n", "slots_guard", "SETRANGE a 1 x\n"},
	{"CVE-2016-8339", "CONFIG", "CONFIG SET " + strings.Repeat("C", 48) + "\n", "cfg_guard", "CONFIG SET p v\n"},
}

// wanted covers the read/write serving workload plus an unknown
// command, so the error path and every dispatcher chain head appear
// in the wanted trace.
var wanted = []string{"PING\n", "GET a\n", "SET a v\n", "EXISTS a\n", "WHAT\n"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== vanilla server: exploits land ==")
	for _, c := range cves {
		compromised, err := attackVanilla(c)
		if err != nil {
			return err
		}
		fmt.Printf("  %-15s (%s): guard corrupted = %v\n", c.id, c.command, compromised)
	}

	fmt.Println("\n== DynaCut-protected server: vulnerable commands blocked live ==")
	app, err := dynacut.BuildKVStore(dynacut.KVStoreConfig{})
	if err != nil {
		return err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}
	errAddr, err := sess.SymbolAddr("resp_err")
	if err != nil {
		return err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo: errAddr,
	})
	if err != nil {
		return err
	}
	// Profile every vulnerable command on the still-clean server
	// first; customizing between profiling runs would poison later
	// trace diffs (a blocked block trapping during profiling drags
	// the error path into the diff).
	blockSets := make(map[string][]dynacut.AbsBlock, len(cves))
	for _, c := range cves {
		blocks, err := sess.ProfileFeatures(wanted, []string{c.probe})
		if err != nil {
			return err
		}
		blockSets[c.id] = blocks
	}
	for _, c := range cves {
		if _, err := cust.DisableBlocks(c.command, blockSets[c.id], dynacut.PolicyBlockEntry); err != nil {
			return err
		}
		resp := sess.MustRequest(c.exploit)
		intact, err := guardIntact(sess, app, c.guard)
		if err != nil {
			return err
		}
		fmt.Printf("  %-15s exploit -> %-8q guard intact = %v\n",
			c.id, strings.TrimSuffix(resp, "\n"), intact)
	}

	fmt.Println("\nregular service still up:")
	for _, r := range []string{"SET k hello\n", "GET k\n", "PING\n"} {
		fmt.Printf("  %-14q -> %q\n", strings.TrimSuffix(r, "\n"),
			strings.TrimSuffix(sess.MustRequest(r), "\n"))
	}
	fmt.Println("\n(the STRALGO/SETRANGE/CONFIG code is still in the binary on disk —")
	fmt.Println(" re-enable any command with Customizer.EnableBlocks when it is needed again)")
	return nil
}

func attackVanilla(c cve) (bool, error) {
	app, err := dynacut.BuildKVStore(dynacut.KVStoreConfig{})
	if err != nil {
		return false, err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return false, err
	}
	_, _ = sess.Request(c.exploit)
	sess.Machine.Run(100_000)
	intact, err := guardIntact(sess, app, c.guard)
	if err != nil {
		return false, err
	}
	return !intact, nil
}

func guardIntact(sess *dynacut.Session, app *dynacut.KVStoreApp, guard string) (bool, error) {
	procs := sess.Machine.Processes()
	if len(procs) == 0 {
		return false, nil // server crashed: definitely compromised
	}
	sym, err := app.Exe.Symbol(guard)
	if err != nil {
		return false, err
	}
	v, err := procs[0].Mem().ReadU64(sym.Value)
	if err != nil {
		return false, err
	}
	return v == uint64(kvstore.GuardMagic), nil
}
