// Webserver example: the paper's headline scenario on the
// Lighttpd-like guest. A read-mostly server runs with its WebDAV
// write methods (PUT/DELETE) dynamically disabled; an administrator
// opens a short write window to upload a file, then closes it again.
// Afterwards, initialization-only code is wiped from memory. The
// server is never restarted, and clients of blocked methods receive
// "403 Forbidden" instead of the process dying.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/dynacut/dynacut"
)

var (
	wanted    = []string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /d\n"}
	undesired = []string{"PUT /f x\n", "DELETE /f\n"}
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{
		Name: "lighttpd", Port: 8080, InitRoutines: 16,
	})
	if err != nil {
		return err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}
	fmt.Printf("lighttpd up; %d basic blocks executed during initialization\n",
		len(sess.InitLog.Blocks))

	// Phase 1 — profile: drive wanted and undesired workloads and
	// diff their coverage (tracediff).
	blocks, err := sess.ProfileFeatures(wanted, undesired)
	if err != nil {
		return err
	}
	fmt.Printf("identified %d blocks unique to PUT/DELETE\n", len(blocks))

	// Phase 2 — disable the write methods; redirect stray accesses to
	// the server's own 403 responder.
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo: errAddr,
	})
	if err != nil {
		return err
	}
	if _, err := cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry); err != nil {
		return err
	}
	show(sess, "read-only service", "GET /\n", "PUT /f secret\n")

	// Phase 3 — the admin needs to upload: open the write window.
	if _, err := cust.EnableBlocks("webdav-write"); err != nil {
		return err
	}
	show(sess, "write window open", "PUT /f uploaded-content\n", "GET /f\n")

	// Phase 4 — close the window again.
	if _, err := cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry); err != nil {
		return err
	}
	show(sess, "window closed", "PUT /f attacker-data\n", "GET /f\n")

	// Phase 5 — drop initialization-only code from memory entirely.
	serving, err := sess.SnapshotPhase("serving")
	if err != nil {
		return err
	}
	initBlocks := dynacut.IdentifyInitBlocks(sess.InitGraph(), serving, app.Config.Name)
	stats, err := cust.DisableBlocks("init-code", initBlocks, dynacut.PolicyWipeBlocks)
	if err != nil {
		return err
	}
	fmt.Printf("\nwiped %d initialization-only blocks (%v)\n",
		stats.BlocksPatched, stats.Total())
	show(sess, "after init removal", "GET /f\n")
	fmt.Printf("\ntotal code disabled: %d bytes across %d block groups\n",
		cust.DisabledBytes(), len(cust.Disabled()))
	return nil
}

func show(sess *dynacut.Session, phase string, reqs ...string) {
	fmt.Printf("\n[%s]\n", phase)
	for _, r := range reqs {
		resp := sess.MustRequest(r)
		fmt.Printf("  %-26q -> %q\n", strings.TrimSuffix(r, "\n"), strings.TrimSuffix(resp, "\n"))
	}
}
