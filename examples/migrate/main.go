// Migrate example: CRIU's original job — live process migration —
// plus DynaCut's twist. A web server is customized (write methods
// blocked, init code wiped) on machine A, dumped to a serialized
// image blob, shipped to machine B together with its binaries, and
// restored there. The customization travels with the image: the
// restored server still answers 403 to PUT without ever having been
// rewritten on B, and it resumes in a fraction of its original boot
// time.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/dynacut/dynacut"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{
		Name: "lighttpd", Port: 8080, InitRoutines: 64,
	})
	if err != nil {
		return err
	}

	// --- Machine A: boot, customize, dump -----------------------------
	bootStart := time.Now()
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}
	bootTime := time.Since(bootStart)

	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /d\n"},
		[]string{"PUT /f x\n", "DELETE /f\n"},
	)
	if err != nil {
		return err
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo: errAddr,
	})
	if err != nil {
		return err
	}
	if _, err := cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry); err != nil {
		return err
	}
	fmt.Printf("machine A: booted in %v, blocked %d WebDAV blocks\n", bootTime, len(blocks))

	set, err := dynacut.Dump(sess.Machine, cust.PID(), dynacut.DumpOpts{ExecPages: true})
	if err != nil {
		return err
	}
	blob := set.Marshal()
	fmt.Printf("machine A: dumped customized image (%d bytes serialized)\n", len(blob))

	// --- Ship to machine B --------------------------------------------
	dst := dynacut.NewMachine()
	for _, name := range []string{app.Exe.Name, app.Libc.Name} {
		data, err := sess.Machine.ReadFile(name)
		if err != nil {
			return err
		}
		dst.WriteFile(name, data)
	}
	restoreStart := time.Now()
	shipped, err := dynacut.UnmarshalImages(blob)
	if err != nil {
		return err
	}
	if _, _, err := dynacut.Restore(dst, shipped); err != nil {
		return err
	}
	restoreTime := time.Since(restoreStart)
	fmt.Printf("machine B: restored in %v (%.1fx faster than machine A's boot)\n",
		restoreTime, float64(bootTime)/float64(restoreTime))

	// --- The customization travelled with the image -------------------
	probe := func(req string) string {
		conn, err := dst.Dial(app.Config.Port)
		if err != nil {
			return "dial error: " + err.Error()
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(req)); err != nil {
			return "write error"
		}
		dst.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 }, 2_000_000)
		return strings.TrimSpace(string(conn.ReadAll()))
	}
	fmt.Printf("machine B: %-14q -> %q\n", "GET /", probe("GET /\n"))
	fmt.Printf("machine B: %-14q -> %q\n", "PUT /f evil", probe("PUT /f evil\n"))
	fmt.Println("the INT3 patches and the injected SIGTRAP handler survived migration.")
	return nil
}
