// spec-initcut example: initialization-code removal on a CPU-bound
// guest (the paper's SPEC INT2017 experiments, Figures 7 and 9). The
// mcf-like benchmark boots, signals end-of-init via nudge, and keeps
// crunching; DynaCut diffs init-phase against serving-phase coverage,
// wipes the blocks that only ran during initialization, and the
// benchmark finishes untouched — while re-running any wiped block
// would trap.
package main

import (
	"fmt"
	"log"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	prof, ok := find("605.mcf_s")
	if !ok {
		return fmt.Errorf("no mcf profile")
	}
	app, err := dynacut.BuildSpec(prof)
	if err != nil {
		return err
	}
	m := dynacut.NewMachine()
	col := trace.NewCollector(prof.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		return err
	}

	var initG *dynacut.Graph
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if initG == nil {
			initG = dynacut.GraphFromLog(col.SnapshotAndReset(p.Modules(), "init"))
		}
	})
	if !m.RunUntil(func() bool { return initG != nil }, 100_000_000) {
		return fmt.Errorf("%s never finished initialization", prof.Name)
	}
	fmt.Printf("%s initialized: %d blocks ran during boot\n", prof.Name, initG.Count())

	// Let a couple of serving passes run, then diff.
	m.Run(60_000)
	servingG := dynacut.GraphFromLog(col.Snapshot(p.Modules(), "serving"))
	initOnly := dynacut.IdentifyInitBlocks(initG, servingG, prof.Name)
	fmt.Printf("serving phase touches %d blocks; %d blocks are init-only\n",
		servingG.Count(), len(initOnly))

	cust, err := dynacut.NewCustomizer(m, p.PID(), dynacut.CustomizerOptions{})
	if err != nil {
		return err
	}
	stats, err := cust.DisableBlocks("init", initOnly, dynacut.PolicyWipeBlocks)
	if err != nil {
		return err
	}
	fmt.Printf("wiped %d init-only blocks in %v (checkpoint %v, update %v, restore %v)\n",
		stats.BlocksPatched, stats.Total(), stats.Checkpoint, stats.CodeUpdate, stats.Restore)

	// The benchmark must still run to completion.
	m.Run(2_000_000_000)
	rp := cust.PID()
	proc, err := m.Process(rp)
	if err != nil {
		return err
	}
	if !proc.Exited() || proc.ExitCode() != 0 {
		return fmt.Errorf("benchmark failed after init removal: exited=%v code=%d killed=%v",
			proc.Exited(), proc.ExitCode(), proc.KilledBy())
	}
	fmt.Printf("%s completed normally with its initialization code wiped from memory\n", prof.Name)
	return nil
}

func find(name string) (dynacut.SpecProfile, bool) {
	for _, p := range dynacut.SpecProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return dynacut.SpecProfile{}, false
}
