// Quickstart: assemble a tiny guest with two features, run it on the
// simulated kernel, block one feature at run time with a single INT3
// byte through the checkpoint→rewrite→restore cycle, and watch the
// injected SIGTRAP handler redirect the blocked path to the program's
// own error handler.
package main

import (
	"fmt"
	"log"

	"github.com/dynacut/dynacut"
)

// The guest: polls a request word, dispatches to feature A or B, and
// has a shared error path — the minimal shape DynaCut needs.
const guestSrc = `
.text
.global _start
_start:
	mov r8, =request
spin:
	load r1, [r8]
	cmp r1, 0
	je spin
	cmp r1, 1
	je feature_a
	cmp r1, 2
	je feature_b
	jmp error_path
feature_a:
	mov r2, 100
	jmp done
feature_b:
	mov r2, 200
	jmp done
error_path:
	mov r2, 255
done:
	mov r9, =result
	store [r9], r2
	mov r9, =request     ; consume the request and poll again
	mov r1, 0
	store [r9], r1
	jmp spin
.data
request: .quad 0
result: .quad 0
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	exe, err := dynacut.Assemble("guest", guestSrc)
	if err != nil {
		return err
	}
	m := dynacut.NewMachine()
	p, err := m.Load(exe)
	if err != nil {
		return err
	}
	m.Run(1000) // guest spins waiting for requests

	reqAddr, _ := exe.Symbol("request")
	resAddr, _ := exe.Symbol("result")
	featA, _ := exe.Symbol("feature_a")
	errPath, _ := exe.Symbol("error_path")

	// send pokes a request into guest memory and returns the result.
	send := func(req uint64) (uint64, error) {
		proc := m.Processes()[0]
		if err := proc.Mem().WriteU64(reqAddr.Value, req); err != nil {
			return 0, err
		}
		m.Run(10_000)
		return proc.Mem().ReadU64(resAddr.Value)
	}

	r, err := send(1)
	if err != nil {
		return err
	}
	fmt.Printf("feature A before customization: result = %d\n", r)

	// Block feature A: one INT3 byte on its first basic block,
	// applied to the frozen checkpoint images, with unexpected
	// accesses redirected to the guest's own error path.
	cust, err := dynacut.NewCustomizer(m, p.PID(), dynacut.CustomizerOptions{
		RedirectTo: errPath.Value,
	})
	if err != nil {
		return err
	}
	stats, err := cust.DisableBlocks("feature-a",
		[]dynacut.AbsBlock{{Addr: featA.Value, Size: featA.Size}},
		dynacut.PolicyBlockEntry)
	if err != nil {
		return err
	}
	fmt.Printf("rewrote process in %v (%d block patched)\n", stats.Total(), stats.BlocksPatched)

	r, err = send(1)
	if err != nil {
		return err
	}
	fmt.Printf("feature A while blocked: result = %d (error path)\n", r)
	r, err = send(2)
	if err != nil {
		return err
	}
	fmt.Printf("feature B unaffected: result = %d\n", r)

	// The change is reversible: re-enable and call A again.
	if _, err := cust.EnableBlocks("feature-a"); err != nil {
		return err
	}
	r, err = send(1)
	if err != nil {
		return err
	}
	fmt.Printf("feature A after re-enable: result = %d\n", r)
	return nil
}
