package dynacut

import (
	"errors"
	"fmt"
	"strings"

	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/trace"
)

// Session packages the common profiling workflow: boot a guest server
// under the coverage tracer, capture initialization-phase coverage at
// the nudge, drive request traffic, and snapshot per-phase coverage
// graphs for the trace-diff analysis. Examples, experiments and
// benchmarks all build on it.
type Session struct {
	Machine   *Machine
	Exe       *Binary
	Port      uint16
	Collector *Collector
	// InitLog is the coverage dumped at the guest's nudge (the end of
	// initialization).
	InitLog *CoverageLog
	// LastErr records the outcome of the most recent Request /
	// MustRequest (nil on success), so flows using MustRequest's
	// lossy signature can still inspect what went wrong.
	LastErr error

	root int
}

// Session errors.
var (
	ErrBootTimeout = errors.New("dynacut: guest never finished initialization")
	ErrNoResponse  = errors.New("dynacut: no response from guest")
	// ErrTruncatedResponse: the per-request instruction budget ran out
	// before the guest finished writing (no quiet drain window was
	// observed and the connection is still open). The partial body is
	// returned alongside the error, so callers can distinguish "slow
	// but correct" from "served and complete".
	ErrTruncatedResponse = errors.New("dynacut: response truncated by request budget")
)

// bootBudget bounds guest instruction counts for boot and request
// handling.
const (
	bootBudget    = 50_000_000
	requestBudget = 5_000_000
)

// StartServer loads the executable plus libraries into a fresh
// machine, runs it until the guest signals end-of-init via nudge, and
// returns the profiling session.
func StartServer(exe *Binary, libs []*Binary, port uint16) (*Session, error) {
	m := NewMachine()
	col := trace.NewCollector(exe.Name)
	m.SetTracer(col)
	p, err := m.Load(exe, libs...)
	if err != nil {
		return nil, err
	}
	s := &Session{Machine: m, Exe: exe, Port: port, Collector: col, root: p.PID()}
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if s.InitLog == nil {
			pr, perr := m.Process(pid)
			if perr != nil {
				return
			}
			s.InitLog = col.SnapshotAndReset(pr.Modules(), "init")
		}
	})
	if !m.RunUntil(func() bool { return s.InitLog != nil }, bootBudget) {
		return nil, fmt.Errorf("%w: exited=%v killed=%v",
			ErrBootTimeout, p.Exited(), p.KilledBy())
	}
	m.Run(10000)
	return s, nil
}

// StartServerAuto is StartServer for guests without an explicit
// nudge: the end of initialization is detected automatically at the
// guest's first accept syscall (core.AutoNudge, the paper's §5
// automation).
func StartServerAuto(exe *Binary, libs []*Binary, port uint16) (*Session, error) {
	m := NewMachine()
	col := trace.NewCollector(exe.Name)
	m.SetTracer(col)
	p, err := m.Load(exe, libs...)
	if err != nil {
		return nil, err
	}
	s := &Session{Machine: m, Exe: exe, Port: port, Collector: col, root: p.PID()}
	NewAutoNudge(m, DefaultInitEndSyscall, func(pid int) {
		if s.InitLog == nil {
			pr, perr := m.Process(pid)
			if perr != nil {
				return
			}
			s.InitLog = col.SnapshotAndReset(pr.Modules(), "init")
		}
	})
	if !m.RunUntil(func() bool { return s.InitLog != nil }, bootBudget) {
		return nil, fmt.Errorf("%w: exited=%v killed=%v",
			ErrBootTimeout, p.Exited(), p.KilledBy())
	}
	m.Run(10000) // drain: park the guest on its accept loop
	return s, nil
}

// PID returns the root guest PID. After a Customizer rewrite use
// Customizer.PID instead (restore creates fresh processes).
func (s *Session) PID() int { return s.root }

// Root returns the current root process if alive, or any live process
// of the session's machine otherwise (after rewrites the PID changes).
func (s *Session) Root() (*Process, error) {
	if p, err := s.Machine.Process(s.root); err == nil && !p.Exited() {
		return p, nil
	}
	procs := s.Machine.Processes()
	if len(procs) == 0 {
		return nil, errors.New("dynacut: no live guest process")
	}
	return procs[0], nil
}

// Request opens a connection, sends one request, runs the machine
// until a response (or close) arrives, and returns the response. The
// outcome is also recorded in s.LastErr.
func (s *Session) Request(req string) (string, error) {
	resp, err := s.requestOnce(req)
	s.LastErr = err
	return resp, err
}

// drainWindow is how long requestOnce keeps running the guest while
// waiting for the next response byte before concluding the response
// is complete. It must comfortably exceed the longest inter-segment
// computation a guest performs mid-response.
const drainWindow = 50_000

func (s *Session) requestOnce(req string) (string, error) {
	conn, err := s.Machine.Dial(s.Port)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(req)); err != nil {
		return "", err
	}
	// Run until the first byte (or close), then drain adaptively: as
	// long as bytes keep arriving, keep granting drain windows — a
	// fixed post-first-byte budget would truncate responses written in
	// several segments. The whole exchange stays bounded by
	// requestBudget of guest ticks.
	start := s.Machine.Clock()
	budgetLeft := func() uint64 {
		used := s.Machine.Clock() - start
		if used >= requestBudget {
			return 0
		}
		return requestBudget - used
	}
	s.Machine.RunUntil(func() bool {
		return len(conn.ReadAllPeek()) > 0 || conn.Closed()
	}, requestBudget)
	got := len(conn.ReadAllPeek())
	quiet := false // a full drain window passed with no new bytes
	for !conn.Closed() {
		left := budgetLeft()
		if left == 0 {
			break
		}
		window := uint64(drainWindow)
		if window > left {
			window = left
		}
		s.Machine.RunUntil(func() bool {
			return len(conn.ReadAllPeek()) > got || conn.Closed()
		}, window)
		n := len(conn.ReadAllPeek())
		if n == got && window == drainWindow {
			quiet = true // a full quiet window: the response is done
			break
		}
		got = n
	}
	resp := string(conn.ReadAll())
	if resp == "" && conn.Closed() {
		return "", ErrNoResponse
	}
	// Budget exhaustion is not completion: if the guest was still
	// mid-response (connection open, never a quiet window), the body
	// is partial — say so instead of passing it off as success.
	if !conn.Closed() && !quiet && budgetLeft() == 0 {
		return resp, fmt.Errorf("%w after %d ticks (%d bytes read)",
			ErrTruncatedResponse, uint64(requestBudget), len(resp))
	}
	return resp, nil
}

// MustRequest is Request for flows that treat failure as fatal
// elsewhere; it returns the empty string on error. The error itself
// is kept in s.LastErr.
func (s *Session) MustRequest(req string) string {
	resp, err := s.Request(req)
	if err != nil {
		return ""
	}
	return resp
}

// CanaryProbe returns a health-check function suitable for
// CustomizerOptions.HealthCheck: after every restore it sends req
// over a fresh connection and fails the transaction — triggering
// rollback — unless the response contains want.
func (s *Session) CanaryProbe(req, want string) func(m *Machine, pid int) error {
	return func(m *Machine, pid int) error {
		if m != s.Machine {
			return errors.New("dynacut: canary probe bound to a different machine")
		}
		// Deliberately not s.Request: the probe runs in the middle of a
		// rewrite, and a routine canary success (or its transient
		// failure, already reported via the transaction's own error
		// path) must not clobber the LastErr the caller is tracking.
		resp, err := s.requestOnce(req)
		if err != nil {
			return fmt.Errorf("canary %q: %w", req, err)
		}
		if !strings.Contains(resp, want) {
			return fmt.Errorf("canary %q: response %q does not contain %q", req, resp, want)
		}
		return nil
	}
}

// HealthProbe returns a machine-generic end-to-end probe for use as
// CustomizerOptions.HealthCheck: unlike Session.CanaryProbe, which is
// deliberately bound to its session's machine, the probe dials
// whatever machine it is invoked on — so one probe serves every CoW
// replica of a fleet rollout. Each call opens a fresh connection,
// sends req, pumps the virtual clock until the guest answers, and
// fails unless the response contains want.
func HealthProbe(port uint16, req, want string) func(m *Machine, pid int) error {
	return func(m *Machine, pid int) error {
		conn, err := m.Dial(port)
		if err != nil {
			return fmt.Errorf("probe %q: %w", req, err)
		}
		if _, err := conn.Write([]byte(req)); err != nil {
			return fmt.Errorf("probe %q: %w", req, err)
		}
		m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
		m.Run(20000)
		if resp := string(conn.ReadAll()); !strings.Contains(resp, want) {
			return fmt.Errorf("probe %q: response %q does not contain %q", req, resp, want)
		}
		return nil
	}
}

// Canary returns a zero-argument end-to-end probe for the
// supervisor's closed loop (SupervisorConfig.Canary): each invocation
// sends req over a fresh connection and fails unless the response
// contains want. Like CanaryProbe it bypasses LastErr — supervisor
// probes run on their own cadence and must not clobber the error the
// application flow is tracking.
func (s *Session) Canary(req, want string) func() error {
	return func() error {
		resp, err := s.requestOnce(req)
		if err != nil {
			return fmt.Errorf("canary %q: %w", req, err)
		}
		if !strings.Contains(resp, want) {
			return fmt.Errorf("canary %q: response %q does not contain %q", req, resp, want)
		}
		return nil
	}
}

// SnapshotPhase captures and clears the coverage collected since the
// previous snapshot (or since the nudge), labelled with the phase.
func (s *Session) SnapshotPhase(phase string) (*Graph, error) {
	p, err := s.Root()
	if err != nil {
		return nil, err
	}
	return coverage.FromLog(s.Collector.SnapshotAndReset(p.Modules(), phase)), nil
}

// InitGraph returns the initialization-phase coverage graph.
func (s *Session) InitGraph() *Graph {
	if s.InitLog == nil {
		return coverage.NewGraph()
	}
	return coverage.FromLog(s.InitLog)
}

// ProfileFeatures drives the wanted then the undesired request sets,
// snapshots each, and returns the blocks unique to the undesired
// features (the §3.1 workflow).
func (s *Session) ProfileFeatures(wanted, undesired []string) ([]AbsBlock, error) {
	s.Collector.Reset()
	for _, r := range wanted {
		if _, err := s.Request(r); err != nil {
			return nil, fmt.Errorf("wanted request %q: %w", r, err)
		}
	}
	covWanted, err := s.SnapshotPhase("wanted")
	if err != nil {
		return nil, err
	}
	for _, r := range undesired {
		if _, err := s.Request(r); err != nil {
			return nil, fmt.Errorf("undesired request %q: %w", r, err)
		}
	}
	covUndesired, err := s.SnapshotPhase("undesired")
	if err != nil {
		return nil, err
	}
	return IdentifyFeatureBlocks(covUndesired, covWanted, s.Exe.Name), nil
}

// SymbolAddr resolves a symbol of the session's executable.
func (s *Session) SymbolAddr(name string) (uint64, error) {
	sym, err := s.Exe.Symbol(name)
	if err != nil {
		return 0, err
	}
	return sym.Value, nil
}

// RunFor executes up to n guest instructions.
func (s *Session) RunFor(n uint64) uint64 { return s.Machine.Run(n) }
