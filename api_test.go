package dynacut

import (
	"testing"
)

// TestExportedSlicesAreCopies: mutating returned slices must not
// corrupt package state.
func TestExportedSlicesAreCopies(t *testing.T) {
	profiles := SpecProfiles()
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	orig := profiles[0].Name
	profiles[0].Name = "mutated"
	if SpecProfiles()[0].Name != orig {
		t.Error("SpecProfiles exposed internal state")
	}

	sys := ServingSyscalls()
	if len(sys) == 0 {
		t.Fatal("no serving syscalls")
	}
	sys[0] = 999999
	if ServingSyscalls()[0] == 999999 {
		t.Error("ServingSyscalls exposed internal state")
	}
	if len(MasterSyscalls()) == 0 {
		t.Error("no master syscalls")
	}
}

func TestAssembleErrorsSurface(t *testing.T) {
	if _, err := Assemble("bad", "not assembly at all"); err == nil {
		t.Error("garbage source assembled")
	}
	if _, err := AssembleLibrary("bad.so", ".text\nf:\n\tjmp nowhere\n"); err == nil {
		t.Error("library with undefined symbol linked")
	}
	// Missing _start.
	if _, err := Assemble("nostart", ".text\nf: ret\n"); err == nil {
		t.Error("executable without _start linked")
	}
}

func TestPolicyConstantsDistinct(t *testing.T) {
	set := map[Policy]bool{
		PolicyBlockEntry: true,
		PolicyWipeBlocks: true,
		PolicyUnmapPages: true,
	}
	if len(set) != 3 {
		t.Error("policy constants collide")
	}
}

func TestGraphHelpers(t *testing.T) {
	app, err := BuildKVStore(KVStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := StartServer(app.Exe, []*Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Request("PING\n"); err != nil {
		t.Fatal(err)
	}
	g1, err := sess.SnapshotPhase("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Request("SET a v\n"); err != nil {
		t.Fatal(err)
	}
	g2, err := sess.SnapshotPhase("b")
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeGraphs(g1, g2)
	if merged.Count() < g1.Count() || merged.Count() < g2.Count() {
		t.Error("merge lost blocks")
	}
	d := DiffGraphs(g2, g1)
	if d.Count() == 0 {
		t.Error("SET produced no unique blocks over PING")
	}
	if d.Count() >= g2.Count() {
		t.Error("diff did not remove shared blocks")
	}
}

// TestAnalyzeCFGOnLibrary: static analysis also works on shared
// libraries (used for the libc customization extension).
func TestAnalyzeCFGOnLibrary(t *testing.T) {
	lib, err := BuildLibc()
	if err != nil {
		t.Fatal(err)
	}
	cfg := AnalyzeCFG(lib)
	if cfg.Count() < 20 {
		t.Errorf("libc CFG has only %d blocks", cfg.Count())
	}
}
